// fpsnr::TimeSeriesSession / TimeSeriesDecoder — the temporal facade.
//
// The encoder keeps the chain bit-synchronized with every decoder by
// closed-loop prediction: after emitting each frame it decodes its OWN
// archive and applies the reference with the same float operations the
// decoder will run, so the reconstruction it predicts the next frame from
// is the decoder's reconstruction, bit for bit. Keyframes therefore exist
// for random access (they bound the replay chain), not for error control —
// each frame's budget is resolved against its own original snapshot.
#include "fpsnr/timeseries.h"

#include <optional>
#include <stdexcept>
#include <utility>

#include "core/pipeline.h"
#include "facade/facade_detail.h"
#include "io/archive.h"
#include "io/bytebuffer.h"
#include "metrics/metrics.h"
#include "temporal/temporal.h"

namespace fpsnr {

namespace {

data::Dims to_dims(const std::vector<std::size_t>& extents) {
  return data::Dims(std::vector<std::size_t>(extents));
}

/// True when snapshot `t` of a series with this keyframe interval is coded
/// spatially. One shared predicate so push() and decode_range()'s replay
/// start can never disagree.
bool is_keyframe(std::size_t t, std::size_t interval) {
  return t == 0 || (interval > 0 && t % interval == 0);
}

}  // namespace

// --- TimeSeriesSession ------------------------------------------------------

struct TimeSeriesSession::Impl {
  TimeSeriesOptions opts;
  core::ControlRequest request;
  core::CompressOptions base;
  std::size_t threads = 1;
  std::uint64_t series_id = 0;

  // Chain state, locked by the first push.
  bool started = false;
  bool is_double = false;
  data::Dims dims;
  std::vector<float> ref32;   ///< previous reconstruction (f32 series)
  std::vector<double> ref64;  ///< previous reconstruction (f64 series)
  std::size_t count = 0;      ///< snapshots pushed
  std::vector<std::vector<std::uint8_t>> archives;  ///< keep_archives only

  Impl(const Target& target, TimeSeriesOptions o)
      : opts(std::move(o)), request(facade::to_request(target)) {
    if (std::holds_alternative<PointwiseRel>(target))
      throw std::invalid_argument(
          "TimeSeriesSession: pointwise-relative targets are not supported "
          "(the temporal chain runs the block pipeline)");
    if (opts.series.empty())
      throw std::invalid_argument("TimeSeriesSession: series name is empty");
    base = facade::resolve_session_options(opts.session, &threads);
    series_id = temporal::hash_series_name(opts.series);
  }

  template <typename T>
  SnapshotRecord push_values(std::span<const T> values);
  std::span<const float> ref_f32() const { return ref32; }
  std::span<const double> ref_f64() const { return ref64; }
};

template <typename T>
SnapshotRecord TimeSeriesSession::Impl::push_values(std::span<const T> values) {
  const std::size_t t = count;
  const bool keyframe = is_keyframe(t, opts.keyframe_interval);
  const core::TileLayout layout = core::make_layout(dims, base.parallel.tile);

  std::span<const T> ref;
  if constexpr (std::is_same_v<T, double>)
    ref = ref64;
  else
    ref = ref32;

  core::CompressOptions copts = base;
  copts.temporal.enabled = true;
  copts.temporal.series_id = series_id;
  copts.temporal.timestep = t;

  temporal::CompositePlan<T> composite;
  std::span<const T> coded = values;
  if (keyframe) {
    copts.temporal.delta = false;
    copts.temporal.ref_hash = 0;
    copts.temporal.block_modes.assign((layout.block_count + 7) / 8, 0);
  } else {
    composite = temporal::build_composite<T>(values, ref, dims, layout);
    copts.temporal.delta = true;
    copts.temporal.ref_hash = temporal::hash_values<T>(ref);
    copts.temporal.block_modes = composite.block_modes;
    // The composite mixes deltas and raw tiles; the error contract — and
    // the recorded range the archive reports PSNR against — belong to the
    // original snapshot.
    copts.value_range_override = metrics::value_range(values);
    coded = composite.values;
  }

  core::CompressResult result =
      core::compress_blocked<T>(coded, dims, request, copts);

  // Closed loop: replay the decoder on our own frame so the stored
  // reference is the decoder's reconstruction, bit for bit.
  auto decoded = core::decompress_blocked<T>(result.stream, threads);
  if (!keyframe)
    temporal::apply_reference<T>(std::span<T>(decoded.values), ref, dims,
                                 layout, copts.temporal.block_modes);
  if constexpr (std::is_same_v<T, double>)
    ref64 = std::move(decoded.values);
  else
    ref32 = std::move(decoded.values);

  SnapshotRecord rec;
  rec.timestep = t;
  rec.keyframe = keyframe;
  rec.temporal_blocks = keyframe ? 0 : composite.temporal_blocks;
  rec.block_count = layout.block_count;
  rec.report.value_count = result.info.value_count;
  rec.report.compressed_bytes = result.info.compressed_bytes;
  rec.report.compression_ratio = result.info.compression_ratio;
  rec.report.bit_rate = result.info.bit_rate;
  rec.report.predicted_psnr_db = result.predicted_psnr_db;
  rec.report.achieved_psnr_db = result.achieved_psnr_db;
  rec.report.rel_bound_used = result.rel_bound_used;
  rec.report.outlier_count = result.info.outlier_count;
  rec.report.block_count = result.block_count;
  rec.report.tile = result.tile;
  rec.report.archive = std::move(result.stream);
  if (opts.keep_archives) archives.push_back(rec.report.archive);
  ++count;
  return rec;
}

TimeSeriesSession::TimeSeriesSession(Target target, TimeSeriesOptions options)
    : impl_(std::make_unique<Impl>(target, std::move(options))) {}

TimeSeriesSession::~TimeSeriesSession() = default;
TimeSeriesSession::TimeSeriesSession(TimeSeriesSession&&) noexcept = default;
TimeSeriesSession& TimeSeriesSession::operator=(TimeSeriesSession&&) noexcept =
    default;

const TimeSeriesOptions& TimeSeriesSession::options() const {
  return impl_->opts;
}

SnapshotRecord TimeSeriesSession::push(const Field& snapshot) {
  Impl& im = *impl_;
  const bool has32 = !snapshot.f32.empty();
  const bool has64 = !snapshot.f64.empty();
  if (has32 == has64)
    throw std::invalid_argument(
        "TimeSeriesSession::push: exactly one of f32/f64 must be filled");
  const data::Dims dims = to_dims(snapshot.dims);  // validates rank 1..3
  const std::size_t n = has64 ? snapshot.f64.size() : snapshot.f32.size();
  if (n != dims.count())
    throw std::invalid_argument(
        "TimeSeriesSession::push: value count does not match dims");
  if (!im.started) {
    im.dims = dims;
    im.is_double = has64;
    im.started = true;
  } else if (dims.extents != im.dims.extents || has64 != im.is_double) {
    throw std::invalid_argument(
        "TimeSeriesSession::push: snapshot dims/scalar differ from the "
        "series' first snapshot");
  }
  return has64 ? im.push_values<double>(snapshot.f64)
               : im.push_values<float>(snapshot.f32);
}

std::size_t TimeSeriesSession::snapshots() const { return impl_->count; }

const std::vector<std::uint8_t>& TimeSeriesSession::archive(
    std::size_t t) const {
  if (!impl_->opts.keep_archives)
    throw std::logic_error(
        "TimeSeriesSession::archive: session was built with keep_archives = "
        "false");
  if (t >= impl_->archives.size())
    throw std::out_of_range("TimeSeriesSession::archive: timestep out of "
                            "range");
  return impl_->archives[t];
}

std::vector<Field> TimeSeriesSession::decode_range(std::size_t t0,
                                                   std::size_t t1) const {
  const Impl& im = *impl_;
  if (!im.opts.keep_archives)
    throw std::logic_error(
        "TimeSeriesSession::decode_range: session was built with "
        "keep_archives = false");
  if (t0 > t1)
    throw std::invalid_argument("TimeSeriesSession::decode_range: t0 > t1");
  if (t1 > im.count)
    throw std::out_of_range(
        "TimeSeriesSession::decode_range: range past the last snapshot");
  std::vector<Field> out;
  if (t0 == t1) return out;
  // Replay from the nearest keyframe at or before t0 — the shortest chain
  // that reaches t0 with the correct reference state.
  std::size_t start = t0;
  while (!is_keyframe(start, im.opts.keyframe_interval)) --start;
  TimeSeriesDecoder decoder(im.threads);
  out.reserve(t1 - t0);
  for (std::size_t t = start; t < t1; ++t) {
    Field f = decoder.feed(im.archives[t]);
    if (t >= t0) out.push_back(std::move(f));
  }
  return out;
}

// --- TimeSeriesDecoder ------------------------------------------------------

struct TimeSeriesDecoder::Impl {
  std::size_t threads;
  bool started = false;
  std::uint64_t series_id = 0;
  std::uint64_t next_timestep = 0;
  std::uint8_t scalar = 0;
  data::Dims dims;
  std::vector<float> ref32;
  std::vector<double> ref64;
  std::size_t frames = 0;

  explicit Impl(std::size_t t) : threads(t) {}

  template <typename T>
  std::vector<T> decode(std::span<const std::uint8_t> archive,
                        const io::BlockContainerHeader& h,
                        const data::Dims& frame_dims, std::span<const T> ref) {
    auto decoded = core::decompress_blocked<T>(archive, threads);
    if (h.is_delta_frame()) {
      const core::TileLayout layout = core::make_layout(
          frame_dims,
          std::vector<std::size_t>(h.tile.begin(), h.tile.end()));
      temporal::apply_reference<T>(std::span<T>(decoded.values), ref,
                                   frame_dims, layout, h.block_modes);
    }
    return std::move(decoded.values);
  }
};

TimeSeriesDecoder::TimeSeriesDecoder(std::size_t threads)
    : impl_(std::make_unique<Impl>(threads)) {}

TimeSeriesDecoder::~TimeSeriesDecoder() = default;
TimeSeriesDecoder::TimeSeriesDecoder(TimeSeriesDecoder&&) noexcept = default;
TimeSeriesDecoder& TimeSeriesDecoder::operator=(TimeSeriesDecoder&&) noexcept =
    default;

std::size_t TimeSeriesDecoder::frames() const { return impl_->frames; }

Field TimeSeriesDecoder::feed(std::span<const std::uint8_t> archive) {
  Impl& im = *impl_;
  const io::BlockContainerHeader h = io::block_container_header(archive);
  if (!h.has_temporal_chain())
    throw io::StreamError(
        "time series: archive is not a temporal (v4) series frame");
  const bool delta = h.is_delta_frame();
  const data::Dims frame_dims = to_dims(
      std::vector<std::size_t>(h.extents.begin(), h.extents.end()));
  if (!im.started) {
    // A chain may start at ANY keyframe (random access), but never at a
    // delta frame — there is no reference state to apply it to.
    if (delta)
      throw io::StreamError(
          "time series: chain must start at a keyframe, got a delta frame");
  } else {
    if (h.series_id != im.series_id)
      throw io::StreamError(
          "time series: frame belongs to a different series");
    if (h.timestep != im.next_timestep)
      throw io::StreamError("time series: timestep gap in the chain");
    if (h.scalar != im.scalar || frame_dims.extents != im.dims.extents)
      throw io::StreamError(
          "time series: frame geometry differs from the chain");
    if (delta) {
      // The frame names the exact reconstruction it was coded against;
      // refuse anything else rather than silently decode garbage.
      const std::uint64_t have =
          im.scalar == 1 ? temporal::hash_values<double>(im.ref64)
                         : temporal::hash_values<float>(im.ref32);
      if (h.ref_hash != have)
        throw io::StreamError(
            "time series: reference hash mismatch (frame was coded against "
            "a different reconstruction)");
    }
  }

  Field out;
  out.dims.assign(h.extents.begin(), h.extents.end());
  if (h.scalar == 1) {
    auto values = im.decode<double>(archive, h, frame_dims,
                                    std::span<const double>(im.ref64));
    im.ref64 = values;
    out.f64 = std::move(values);
  } else {
    auto values = im.decode<float>(archive, h, frame_dims,
                                   std::span<const float>(im.ref32));
    im.ref32 = values;
    out.f32 = std::move(values);
  }
  im.started = true;
  im.series_id = h.series_id;
  im.next_timestep = h.timestep + 1;
  im.scalar = h.scalar;
  im.dims = frame_dims;
  ++im.frames;
  return out;
}

}  // namespace fpsnr
