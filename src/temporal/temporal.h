// Temporal delta coding over the block pipeline (INTERNAL).
//
// A time series is compressed as a chain of FPBK v4 frames: keyframes are
// coded spatially from scratch; delta frames code, per tile, either the
// snapshot itself or its pointwise difference against the PREVIOUS
// timestep's reconstruction — the decoder-visible state, so encoder and
// decoder stay bit-synchronized by construction. The composite field
// (delta tiles + raw fallback tiles) runs through the unchanged
// FieldCompressor stack; because the reference is exact on both sides, the
// composite's per-point error IS the reconstruction's per-point error
// against the original snapshot, so every pointwise bound and the global
// fixed-PSNR guarantee carry over verbatim (the budget is resolved against
// the ORIGINAL snapshot's value range via
// CompressOptions::value_range_override).
//
// Per-tile mode choice: motion or turbulence can make the delta field
// ROUGHER than the data (residual energy above signal energy), so each
// tile probes RMS(x - ref) against RMS(x) and falls back to spatial coding
// when the delta loses. The probe is a deterministic double-accumulation
// C-order walk — data-dependent only, never thread- or schedule-dependent —
// and the chosen modes are recorded in the v4 per-block bitmap.
//
// External callers use fpsnr::TimeSeriesSession (include/fpsnr/timeseries.h).
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "core/tile_layout.h"
#include "data/field.h"

namespace fpsnr::temporal {

/// FNV-1a 64-bit over raw bytes — the chain's identity hash. Stable across
/// platforms (explicit width, no endianness dependence beyond the caller's
/// byte view).
std::uint64_t fnv1a64(std::span<const std::uint8_t> bytes);

/// Series identity: FNV-1a of the series name's bytes.
std::uint64_t hash_series_name(std::string_view name);

/// Reference identity: FNV-1a over the reconstruction's raw value bytes.
/// 0 is reserved to mean "no reference" in the v4 header, so a (vanishingly
/// unlikely) zero digest is remapped to 1.
template <typename T>
std::uint64_t hash_values(std::span<const T> values) {
  const std::uint64_t h = fnv1a64(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(values.data()),
      values.size() * sizeof(T)));
  return h == 0 ? 1 : h;
}

/// A delta frame's composite field plus the per-block mode decisions.
template <typename T>
struct CompositePlan {
  std::vector<T> values;  ///< per tile: x - ref (temporal) or x (spatial)
  std::vector<std::uint8_t> block_modes;  ///< v4 bitmap, bit b = temporal
  std::size_t temporal_blocks = 0;
};

/// Probe every tile of `layout` and build the composite: a tile codes the
/// temporal delta iff RMS(x - ref) < RMS(x) (strict — ties keep the raw
/// data, matching a keyframe's behaviour on static-free noise). snapshot
/// and ref must both have dims.count() values.
template <typename T>
CompositePlan<T> build_composite(std::span<const T> snapshot,
                                 std::span<const T> ref,
                                 const data::Dims& dims,
                                 const core::TileLayout& layout);

/// Rebuild the reconstruction from a decoded composite: add the reference
/// back on every tile the bitmap marks temporal (in place). The layout must
/// be the one the frame was written with (make_layout of the header tile).
template <typename T>
void apply_reference(std::span<T> composite, std::span<const T> ref,
                     const data::Dims& dims, const core::TileLayout& layout,
                     std::span<const std::uint8_t> block_modes);

extern template struct CompositePlan<float>;
extern template struct CompositePlan<double>;
extern template CompositePlan<float> build_composite<float>(
    std::span<const float>, std::span<const float>, const data::Dims&,
    const core::TileLayout&);
extern template CompositePlan<double> build_composite<double>(
    std::span<const double>, std::span<const double>, const data::Dims&,
    const core::TileLayout&);
extern template void apply_reference<float>(std::span<float>,
                                            std::span<const float>,
                                            const data::Dims&,
                                            const core::TileLayout&,
                                            std::span<const std::uint8_t>);
extern template void apply_reference<double>(std::span<double>,
                                             std::span<const double>,
                                             const data::Dims&,
                                             const core::TileLayout&,
                                             std::span<const std::uint8_t>);

}  // namespace fpsnr::temporal
