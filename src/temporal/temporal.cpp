#include "temporal/temporal.h"

#include <cmath>
#include <stdexcept>

namespace fpsnr::temporal {

std::uint64_t fnv1a64(std::span<const std::uint8_t> bytes) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::uint8_t b : bytes) {
    h ^= b;
    h *= 0x100000001b3ull;
  }
  return h;
}

std::uint64_t hash_series_name(std::string_view name) {
  return fnv1a64(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(name.data()), name.size()));
}

namespace {

/// Visit every point of tile `b` in C order: fn(field_offset).
template <typename Fn>
void for_tile(const core::TileLayout& layout, const data::Dims& dims,
              std::size_t b, Fn&& fn) {
  const std::size_t rank = dims.rank();
  const core::TileRegion r = core::tile_region(layout, dims, b);
  std::size_t stride[3];
  core::field_strides(dims, stride);
  std::size_t c[3] = {0, 0, 0};
  for (std::size_t i = 0; i < r.count; ++i) {
    std::size_t offset = 0;
    for (std::size_t a = 0; a < rank; ++a)
      offset += (r.start[a] + c[a]) * stride[a];
    fn(offset);
    for (std::size_t a = rank; a-- > 0;) {
      if (++c[a] < r.ext[a]) break;
      c[a] = 0;
    }
  }
}

}  // namespace

template <typename T>
CompositePlan<T> build_composite(std::span<const T> snapshot,
                                 std::span<const T> ref,
                                 const data::Dims& dims,
                                 const core::TileLayout& layout) {
  if (snapshot.size() != dims.count() || ref.size() != dims.count())
    throw std::invalid_argument(
        "temporal: snapshot/reference size does not match dims");
  CompositePlan<T> plan;
  plan.values.assign(snapshot.begin(), snapshot.end());
  plan.block_modes.assign((layout.block_count + 7) / 8, 0);
  for (std::size_t b = 0; b < layout.block_count; ++b) {
    // Energy probe in doubles: sum x^2 vs sum (x - ref)^2 over the tile.
    // (Same point count on both sides, so comparing sums == comparing RMS.)
    // NaN poisons both accumulators identically and the < below is false,
    // so poisoned tiles deterministically keep spatial mode.
    double raw = 0.0, res = 0.0;
    for_tile(layout, dims, b, [&](std::size_t i) {
      const double x = static_cast<double>(snapshot[i]);
      const double d = x - static_cast<double>(ref[i]);
      raw += x * x;
      res += d * d;
    });
    if (res < raw) {
      plan.block_modes[b / 8] |= static_cast<std::uint8_t>(1u << (b % 8));
      ++plan.temporal_blocks;
      for_tile(layout, dims, b, [&](std::size_t i) {
        plan.values[i] = snapshot[i] - ref[i];
      });
    }
  }
  return plan;
}

template <typename T>
void apply_reference(std::span<T> composite, std::span<const T> ref,
                     const data::Dims& dims, const core::TileLayout& layout,
                     std::span<const std::uint8_t> block_modes) {
  if (composite.size() != dims.count() || ref.size() != dims.count())
    throw std::invalid_argument(
        "temporal: composite/reference size does not match dims");
  if (block_modes.size() != (layout.block_count + 7) / 8)
    throw std::invalid_argument(
        "temporal: mode bitmap does not match the block layout");
  for (std::size_t b = 0; b < layout.block_count; ++b) {
    if (!((block_modes[b / 8] >> (b % 8)) & 1)) continue;
    for_tile(layout, dims, b, [&](std::size_t i) {
      // Same float add the encoder replayed on its own decode, so both
      // sides land on the identical reconstruction bits.
      composite[i] = static_cast<T>(composite[i] + ref[i]);
    });
  }
}

template struct CompositePlan<float>;
template struct CompositePlan<double>;
template CompositePlan<float> build_composite<float>(std::span<const float>,
                                                     std::span<const float>,
                                                     const data::Dims&,
                                                     const core::TileLayout&);
template CompositePlan<double> build_composite<double>(
    std::span<const double>, std::span<const double>, const data::Dims&,
    const core::TileLayout&);
template void apply_reference<float>(std::span<float>, std::span<const float>,
                                     const data::Dims&,
                                     const core::TileLayout&,
                                     std::span<const std::uint8_t>);
template void apply_reference<double>(std::span<double>,
                                      std::span<const double>,
                                      const data::Dims&,
                                      const core::TileLayout&,
                                      std::span<const std::uint8_t>);

}  // namespace fpsnr::temporal
