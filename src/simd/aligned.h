// 64-byte-aligned allocation for hot-kernel scratch buffers.
//
// The vector kernels (src/simd/kernels.h) operate on whole cache lines;
// allocating per-block scratch/recon buffers at 64-byte alignment keeps
// full blocks out of the unaligned tail path and off split cache lines.
// std::vector with this allocator stays a drop-in std::vector everywhere a
// std::span is accepted, so only the owning declarations change.
#pragma once

#include <cstddef>
#include <new>

namespace fpsnr::simd {

/// Cache-line / AVX-512-friendly alignment for kernel buffers.
inline constexpr std::size_t kAlignment = 64;

/// Minimal C++17 aligned allocator (operator new with align_val_t, so it
/// composes with ASan/TSan and needs no platform-specific aligned_alloc).
template <typename T>
struct AlignedAllocator {
  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U>&) noexcept {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(::operator new(
        n * sizeof(T), std::align_val_t{kAlignment}));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{kAlignment});
  }

  template <typename U>
  bool operator==(const AlignedAllocator<U>&) const noexcept { return true; }
};

}  // namespace fpsnr::simd

// aligned_vector lives outside the class so it can be forward-used with the
// usual vector spelling at call sites.
#include <vector>

namespace fpsnr::simd {

/// std::vector whose storage is 64-byte aligned.
template <typename T>
using aligned_vector = std::vector<T, AlignedAllocator<T>>;

}  // namespace fpsnr::simd
