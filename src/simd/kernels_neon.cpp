// NEON (aarch64) backend. Baseline on every aarch64 build, so no -m flags
// are needed; -ffp-contract=off (set project-wide) is what keeps the
// compiler from fusing the separate vmul/vadd intrinsics below into FMAs,
// which would break bit-parity with the scalar reference.
//
// aarch64 makes the rounding story simpler than AVX2: FCVTAS
// (vcvtaq_s64_f64) converts with ties away from zero — exactly
// std::llround — for every magnitude below 2^63, and the zfpr escape
// threshold (4.0e18) already bounds the domain, so no magic-number
// emulation or domain fallback is needed.
//
// The Lorenzo wavefront and the Huffman pack stay on the shared scalar
// reference here: the pack's bit-offset merge is serial everywhere, and a
// 2-lane wavefront pays more in lane shuffling than it recovers.
#include "simd/kernels.h"
#include "simd/kernels_ref.h"

#if defined(__aarch64__)

#include <arm_neon.h>

#include <cmath>
#include <cstdint>

namespace fpsnr::simd {
namespace {

inline bool both_lanes(uint64x2_t mask) {
  return (vgetq_lane_u64(mask, 0) & vgetq_lane_u64(mask, 1)) ==
         ~std::uint64_t{0};
}

// --- Haar ------------------------------------------------------------------

void haar_fwd_pairs_neon(const double* line, double* approx, double* detail,
                         std::size_t pairs, double c) {
  const float64x2_t vc = vdupq_n_f64(c);
  std::size_t k = 0;
  for (; k + 2 <= pairs; k += 2) {
    const float64x2x2_t eo = vld2q_f64(line + 2 * k);  // val[0]=evens
    vst1q_f64(approx + k, vmulq_f64(vaddq_f64(eo.val[0], eo.val[1]), vc));
    vst1q_f64(detail + k, vmulq_f64(vsubq_f64(eo.val[0], eo.val[1]), vc));
  }
  if (k < pairs)
    haar_fwd_pairs_ref(line + 2 * k, approx + k, detail + k, pairs - k, c);
}

void haar_inv_pairs_neon(const double* approx, const double* detail,
                         double* line, std::size_t pairs, double c) {
  const float64x2_t vc = vdupq_n_f64(c);
  std::size_t k = 0;
  for (; k + 2 <= pairs; k += 2) {
    const float64x2_t a = vld1q_f64(approx + k);
    const float64x2_t d = vld1q_f64(detail + k);
    float64x2x2_t eo;
    eo.val[0] = vmulq_f64(vaddq_f64(a, d), vc);
    eo.val[1] = vmulq_f64(vsubq_f64(a, d), vc);
    vst2q_f64(line + 2 * k, eo);
  }
  if (k < pairs)
    haar_inv_pairs_ref(approx + k, detail + k, line + 2 * k, pairs - k, c);
}

// --- DCT -------------------------------------------------------------------

void dct2_line_neon(const double* x, double* y, std::size_t m,
                    const double* tab_jk, const double* tab_kj, double s0,
                    double sk) {
  std::size_t k = 0;
  for (; k + 2 <= m; k += 2) {
    const double* t = tab_jk + k;
    float64x2_t acc = vdupq_n_f64(0.0);
    for (std::size_t j = 0; j < m; ++j)
      acc = vaddq_f64(acc, vmulq_f64(vdupq_n_f64(x[j]), vld1q_f64(t + j * m)));
    float64x2_t scale = vdupq_n_f64(sk);
    if (k == 0) scale = vsetq_lane_f64(s0, scale, 0);
    vst1q_f64(y + k, vmulq_f64(scale, acc));
  }
  for (; k < m; ++k) {
    const double* col = tab_kj + k * m;
    double acc = 0.0;
    for (std::size_t j = 0; j < m; ++j) acc += x[j] * col[j];
    y[k] = (k == 0 ? s0 : sk) * acc;
  }
}

void dct3_line_neon(const double* y, double* x, std::size_t m,
                    const double* tab_jk, const double* tab_kj, double s0,
                    double sk) {
  std::size_t j = 0;
  for (; j + 2 <= m; j += 2) {
    const double* t = tab_kj + j;
    float64x2_t acc = vmulq_f64(vdupq_n_f64(s0), vdupq_n_f64(y[0]));
    for (std::size_t k = 1; k < m; ++k)
      acc = vaddq_f64(acc,
                      vmulq_f64(vdupq_n_f64(sk * y[k]), vld1q_f64(t + k * m)));
    vst1q_f64(x + j, acc);
  }
  for (; j < m; ++j) {
    const double* row = tab_jk + j * m;
    double acc = s0 * y[0];
    for (std::size_t k = 1; k < m; ++k) acc += (sk * y[k]) * row[k];
    x[j] = acc;
  }
}

// --- zfpr group quantization ----------------------------------------------

unsigned zfpr_quant_group_neon(const double* c, std::size_t n, double bin,
                               std::uint64_t* zz, double* recon) {
  const float64x2_t vbin = vdupq_n_f64(bin);
  const float64x2_t vlim = vdupq_n_f64(kZfprMaxIndexMagnitude);
  uint64x2_t or_zz = vdupq_n_u64(0);
  std::size_t j = 0;
  for (; j + 2 <= n; j += 2) {
    const float64x2_t t = vdivq_f64(vld1q_f64(c + j), vbin);
    if (!both_lanes(vcltq_f64(vabsq_f64(t), vlim))) return kZfprEscape;
    const int64x2_t k = vcvtaq_s64_f64(t);  // FCVTAS == llround here
    vst1q_f64(recon + j, vmulq_f64(vcvtq_f64_s64(k), vbin));
    const uint64x2_t z =
        veorq_u64(vreinterpretq_u64_s64(vshlq_n_s64(k, 1)),
                  vreinterpretq_u64_s64(vshrq_n_s64(k, 63)));
    vst1q_u64(zz + j, z);
    or_zz = vorrq_u64(or_zz, z);
  }
  std::uint64_t all = vgetq_lane_u64(or_zz, 0) | vgetq_lane_u64(or_zz, 1);
  for (; j < n; ++j) {
    const double v = c[j];
    if (!(std::abs(v) / bin < kZfprMaxIndexMagnitude)) return kZfprEscape;
    const std::int64_t k = std::llround(v / bin);
    recon[j] = static_cast<double>(k) * bin;
    zz[j] = zigzag_encode_ref(k);
    all |= zz[j];
  }
  return all == 0 ? 0u : static_cast<unsigned>(std::bit_width(all));
}

unsigned zfpr_census_group_neon(const double* c, std::size_t n, double bin) {
  const float64x2_t vbin = vdupq_n_f64(bin);
  const float64x2_t vlim = vdupq_n_f64(kZfprMaxIndexMagnitude);
  uint64x2_t or_zz = vdupq_n_u64(0);
  std::size_t j = 0;
  for (; j + 2 <= n; j += 2) {
    const float64x2_t t = vdivq_f64(vld1q_f64(c + j), vbin);
    if (!both_lanes(vcltq_f64(vabsq_f64(t), vlim))) return kZfprEscape;
    const int64x2_t k = vcvtaq_s64_f64(t);
    or_zz = vorrq_u64(or_zz,
                      veorq_u64(vreinterpretq_u64_s64(vshlq_n_s64(k, 1)),
                                vreinterpretq_u64_s64(vshrq_n_s64(k, 63))));
  }
  std::uint64_t all = vgetq_lane_u64(or_zz, 0) | vgetq_lane_u64(or_zz, 1);
  for (; j < n; ++j) {
    const double v = c[j];
    if (!(std::abs(v) / bin < kZfprMaxIndexMagnitude)) return kZfprEscape;
    all |= zigzag_encode_ref(std::llround(v / bin));
  }
  return all == 0 ? 0u : static_cast<unsigned>(std::bit_width(all));
}

// --- SSE accumulators ------------------------------------------------------
// Two float64x2 accumulators reproduce the defined virtual-4-lane order:
// acc01 holds lanes 0,1 and acc23 lanes 2,3; folded (a0+a1)+(a2+a3).

double sse_f32_neon(const float* a, const float* b, std::size_t n) {
  float64x2_t acc01 = vdupq_n_f64(0.0);
  float64x2_t acc23 = vdupq_n_f64(0.0);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float64x2_t e01 = vsubq_f64(vcvt_f64_f32(vld1_f32(a + i)),
                                      vcvt_f64_f32(vld1_f32(b + i)));
    const float64x2_t e23 = vsubq_f64(vcvt_f64_f32(vld1_f32(a + i + 2)),
                                      vcvt_f64_f32(vld1_f32(b + i + 2)));
    acc01 = vaddq_f64(acc01, vmulq_f64(e01, e01));
    acc23 = vaddq_f64(acc23, vmulq_f64(e23, e23));
  }
  double total = (vgetq_lane_f64(acc01, 0) + vgetq_lane_f64(acc01, 1)) +
                 (vgetq_lane_f64(acc23, 0) + vgetq_lane_f64(acc23, 1));
  for (; i < n; ++i) {
    const double e = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    total += e * e;
  }
  return total;
}

double sse_f64_neon(const double* a, const double* b, std::size_t n) {
  float64x2_t acc01 = vdupq_n_f64(0.0);
  float64x2_t acc23 = vdupq_n_f64(0.0);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float64x2_t e01 = vsubq_f64(vld1q_f64(a + i), vld1q_f64(b + i));
    const float64x2_t e23 =
        vsubq_f64(vld1q_f64(a + i + 2), vld1q_f64(b + i + 2));
    acc01 = vaddq_f64(acc01, vmulq_f64(e01, e01));
    acc23 = vaddq_f64(acc23, vmulq_f64(e23, e23));
  }
  double total = (vgetq_lane_f64(acc01, 0) + vgetq_lane_f64(acc01, 1)) +
                 (vgetq_lane_f64(acc23, 0) + vgetq_lane_f64(acc23, 1));
  for (; i < n; ++i) {
    const double e = a[i] - b[i];
    total += e * e;
  }
  return total;
}

double sse_cast_f32_neon(const float* values, const double* recon,
                         std::size_t n) {
  float64x2_t acc01 = vdupq_n_f64(0.0);
  float64x2_t acc23 = vdupq_n_f64(0.0);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float64x2_t r01 =
        vcvt_f64_f32(vcvt_f32_f64(vld1q_f64(recon + i)));
    const float64x2_t r23 =
        vcvt_f64_f32(vcvt_f32_f64(vld1q_f64(recon + i + 2)));
    const float64x2_t e01 =
        vsubq_f64(vcvt_f64_f32(vld1_f32(values + i)), r01);
    const float64x2_t e23 =
        vsubq_f64(vcvt_f64_f32(vld1_f32(values + i + 2)), r23);
    acc01 = vaddq_f64(acc01, vmulq_f64(e01, e01));
    acc23 = vaddq_f64(acc23, vmulq_f64(e23, e23));
  }
  double total = (vgetq_lane_f64(acc01, 0) + vgetq_lane_f64(acc01, 1)) +
                 (vgetq_lane_f64(acc23, 0) + vgetq_lane_f64(acc23, 1));
  for (; i < n; ++i) {
    const double e = static_cast<double>(values[i]) -
                     static_cast<double>(static_cast<float>(recon[i]));
    total += e * e;
  }
  return total;
}

}  // namespace

const KernelTable* neon_kernel_table() {
  static const KernelTable table{
      "neon",
      &haar_fwd_pairs_neon,
      &haar_inv_pairs_neon,
      &dct2_line_neon,
      &dct3_line_neon,
      &zfpr_quant_group_neon,
      &zfpr_census_group_neon,
      &huffman_pack_ref,
      &lorenzo2_quant_ref<float>,
      &lorenzo2_quant_ref<double>,
      &sse_f32_neon,
      &sse_f64_neon,
      &sse_cast_f32_neon,
  };
  return &table;
}

}  // namespace fpsnr::simd

#else  // !aarch64

namespace fpsnr::simd {
const KernelTable* neon_kernel_table() { return nullptr; }
}  // namespace fpsnr::simd

#endif
