// AVX2 backend. Compiled with -mavx2 -mno-fma (see CMakeLists.txt): FMA
// contraction would change results, and every kernel here must be
// bit-identical to the scalar reference in kernels_ref.h.
//
// Vectorization strategy per kernel:
//  * haar:    4 butterflies per iteration, in-register de/interleave.
//  * dct:     4 outputs per iteration; each lane's accumulation stays in
//             the reference's sequential index order.
//  * zfpr:    4 coefficients per iteration with an exact llround emulation;
//             magnitudes >= 2^50 replay the whole group through the
//             reference (the magic-number trick is only proven below that).
//  * lorenzo: 4 rows in a skewed anti-diagonal pipeline; each point's
//             serial arithmetic is reproduced exactly, lanes only ever span
//             points whose dependencies were produced in earlier steps.
//  * sse:     one vector accumulator IS the defined virtual-4-lane order.
//  * huffman: shared scalar pack (the bit-offset merge is inherently
//             serial); kept in the table for uniform dispatch.
#include "simd/kernels.h"
#include "simd/kernels_ref.h"

#if defined(__x86_64__) && defined(__AVX2__)

#include <immintrin.h>

#include <cmath>
#include <cstdint>

namespace fpsnr::simd {
namespace {

// 2^52 + 2^51: adding then subtracting forces round-to-nearest-even at
// integer granularity for |t| < 2^51 (the 2^51 offset keeps negatives in
// the same binade, making the integer readable from the low mantissa bits).
constexpr double kRoundMagic = 6755399441055744.0;
// Kernel-local domain guard: the emulation (and its tie fix-up) is used
// only for |t| < 2^50; larger magnitudes take the scalar reference.
constexpr double kRoundDomain = 1125899906842624.0;

inline __m256d abs_pd(__m256d v) {
  return _mm256_andnot_pd(_mm256_set1_pd(-0.0), v);
}

struct Rounded4 {
  __m256i k;  // llround-equivalent integer per lane
  __m256d r;  // double(k)
};

/// Round half away from zero, exactly matching std::round / std::llround
/// for |t| < 2^50. Computes round-to-nearest-even via the magic-number
/// trick, then fixes the two tie cases: frac == t - rne(t) is exact
/// (Sterbenz), frac == +0.5 means RNE rounded down (fix up iff t > 0),
/// frac == -0.5 means RNE rounded up (fix down iff t < 0).
inline Rounded4 round_half_away(__m256d t) {
  const __m256d magic = _mm256_set1_pd(kRoundMagic);
  const __m256i magic_bits = _mm256_castpd_si256(magic);
  const __m256d big = _mm256_add_pd(t, magic);
  __m256i k = _mm256_sub_epi64(_mm256_castpd_si256(big), magic_bits);
  const __m256d re = _mm256_sub_pd(big, magic);
  const __m256d frac = _mm256_sub_pd(t, re);
  const __m256d zero = _mm256_setzero_pd();
  const __m256i up = _mm256_castpd_si256(
      _mm256_and_pd(_mm256_cmp_pd(frac, _mm256_set1_pd(0.5), _CMP_EQ_OQ),
                    _mm256_cmp_pd(t, zero, _CMP_GT_OQ)));
  const __m256i dn = _mm256_castpd_si256(
      _mm256_and_pd(_mm256_cmp_pd(frac, _mm256_set1_pd(-0.5), _CMP_EQ_OQ),
                    _mm256_cmp_pd(t, zero, _CMP_LT_OQ)));
  // Masks are 0 or -1 per lane: subtracting -1 increments, adding -1
  // decrements.
  k = _mm256_sub_epi64(k, up);
  k = _mm256_add_epi64(k, dn);
  const __m256d r = _mm256_sub_pd(
      _mm256_castsi256_pd(_mm256_add_epi64(k, magic_bits)), magic);
  return {k, r};
}

// --- Haar ------------------------------------------------------------------

void haar_fwd_pairs_avx2(const double* line, double* approx, double* detail,
                         std::size_t pairs, double c) {
  const __m256d vc = _mm256_set1_pd(c);
  std::size_t k = 0;
  for (; k + 4 <= pairs; k += 4) {
    const __m256d v0 = _mm256_loadu_pd(line + 2 * k);      // e0 o0 e1 o1
    const __m256d v1 = _mm256_loadu_pd(line + 2 * k + 4);  // e2 o2 e3 o3
    const __m256d p0 = _mm256_permute2f128_pd(v0, v1, 0x20);  // e0 o0 e2 o2
    const __m256d p1 = _mm256_permute2f128_pd(v0, v1, 0x31);  // e1 o1 e3 o3
    const __m256d even = _mm256_unpacklo_pd(p0, p1);
    const __m256d odd = _mm256_unpackhi_pd(p0, p1);
    _mm256_storeu_pd(approx + k,
                     _mm256_mul_pd(_mm256_add_pd(even, odd), vc));
    _mm256_storeu_pd(detail + k,
                     _mm256_mul_pd(_mm256_sub_pd(even, odd), vc));
  }
  if (k < pairs)
    haar_fwd_pairs_ref(line + 2 * k, approx + k, detail + k, pairs - k, c);
}

void haar_inv_pairs_avx2(const double* approx, const double* detail,
                         double* line, std::size_t pairs, double c) {
  const __m256d vc = _mm256_set1_pd(c);
  std::size_t k = 0;
  for (; k + 4 <= pairs; k += 4) {
    const __m256d a = _mm256_loadu_pd(approx + k);
    const __m256d d = _mm256_loadu_pd(detail + k);
    const __m256d even = _mm256_mul_pd(_mm256_add_pd(a, d), vc);
    const __m256d odd = _mm256_mul_pd(_mm256_sub_pd(a, d), vc);
    const __m256d lo = _mm256_unpacklo_pd(even, odd);  // e0 o0 e2 o2
    const __m256d hi = _mm256_unpackhi_pd(even, odd);  // e1 o1 e3 o3
    _mm256_storeu_pd(line + 2 * k, _mm256_permute2f128_pd(lo, hi, 0x20));
    _mm256_storeu_pd(line + 2 * k + 4, _mm256_permute2f128_pd(lo, hi, 0x31));
  }
  if (k < pairs)
    haar_inv_pairs_ref(approx + k, detail + k, line + 2 * k, pairs - k, c);
}

// --- DCT -------------------------------------------------------------------

void dct2_line_avx2(const double* x, double* y, std::size_t m,
                    const double* tab_jk, const double* tab_kj, double s0,
                    double sk) {
  std::size_t k = 0;
  for (; k + 4 <= m; k += 4) {
    // Lane l accumulates output k+l over ascending j — the exact scalar
    // order per output; tab_jk streams the four k entries contiguously.
    const double* t = tab_jk + k;
    __m256d acc = _mm256_setzero_pd();
    for (std::size_t j = 0; j < m; ++j)
      acc = _mm256_add_pd(
          acc, _mm256_mul_pd(_mm256_set1_pd(x[j]), _mm256_loadu_pd(t + j * m)));
    __m256d scale = _mm256_set1_pd(sk);
    if (k == 0) scale = _mm256_set_pd(sk, sk, sk, s0);
    _mm256_storeu_pd(y + k, _mm256_mul_pd(scale, acc));
  }
  for (; k < m; ++k) {
    const double* col = tab_kj + k * m;
    double acc = 0.0;
    for (std::size_t j = 0; j < m; ++j) acc += x[j] * col[j];
    y[k] = (k == 0 ? s0 : sk) * acc;
  }
}

void dct3_line_avx2(const double* y, double* x, std::size_t m,
                    const double* tab_jk, const double* tab_kj, double s0,
                    double sk) {
  std::size_t j = 0;
  for (; j + 4 <= m; j += 4) {
    const double* t = tab_kj + j;
    __m256d acc = _mm256_mul_pd(_mm256_set1_pd(s0), _mm256_set1_pd(y[0]));
    for (std::size_t k = 1; k < m; ++k)
      acc = _mm256_add_pd(
          acc, _mm256_mul_pd(_mm256_set1_pd(sk * y[k]),
                             _mm256_loadu_pd(t + k * m)));
    _mm256_storeu_pd(x + j, acc);
  }
  for (; j < m; ++j) {
    const double* row = tab_jk + j * m;
    double acc = s0 * y[0];
    for (std::size_t k = 1; k < m; ++k) acc += (sk * y[k]) * row[k];
    x[j] = acc;
  }
}

// --- zfpr group quantization ----------------------------------------------

void zigzag_store4(__m256i k, std::uint64_t* zz, __m256i* or_zz) {
  // (k << 1) ^ (k >> 63); AVX2 has no 64-bit arithmetic shift, but the
  // sign-fill word is exactly cmpgt(0, k).
  const __m256i sgn = _mm256_cmpgt_epi64(_mm256_setzero_si256(), k);
  const __m256i z = _mm256_xor_si256(_mm256_slli_epi64(k, 1), sgn);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(zz), z);
  *or_zz = _mm256_or_si256(*or_zz, z);
}

unsigned zfpr_quant_group_avx2(const double* c, std::size_t n, double bin,
                               std::uint64_t* zz, double* recon) {
  const __m256d vbin = _mm256_set1_pd(bin);
  const __m256d vlim = _mm256_set1_pd(kZfprMaxIndexMagnitude);
  const __m256d vdom = _mm256_set1_pd(kRoundDomain);
  __m256i or_zz = _mm256_setzero_si256();
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const __m256d t = _mm256_div_pd(_mm256_loadu_pd(c + j), vbin);
    const __m256d at = abs_pd(t);
    // |c|/bin == |c/bin| (bin > 0), and NaN fails the ordered compare just
    // like the scalar !(x < lim) test.
    if (_mm256_movemask_pd(_mm256_cmp_pd(at, vlim, _CMP_LT_OQ)) != 0xF)
      return kZfprEscape;
    if (_mm256_movemask_pd(_mm256_cmp_pd(at, vdom, _CMP_LT_OQ)) != 0xF)
      return zfpr_quant_group_ref(c, n, bin, zz, recon);
    const Rounded4 rv = round_half_away(t);
    _mm256_storeu_pd(recon + j, _mm256_mul_pd(rv.r, vbin));
    zigzag_store4(rv.k, zz + j, &or_zz);
  }
  alignas(32) std::uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), or_zz);
  std::uint64_t all = (lanes[0] | lanes[1]) | (lanes[2] | lanes[3]);
  for (; j < n; ++j) {
    const double v = c[j];
    if (!(std::abs(v) / bin < kZfprMaxIndexMagnitude)) return kZfprEscape;
    const std::int64_t k = std::llround(v / bin);
    recon[j] = static_cast<double>(k) * bin;
    zz[j] = zigzag_encode_ref(k);
    all |= zz[j];
  }
  return all == 0 ? 0u : static_cast<unsigned>(std::bit_width(all));
}

unsigned zfpr_census_group_avx2(const double* c, std::size_t n, double bin) {
  const __m256d vbin = _mm256_set1_pd(bin);
  const __m256d vlim = _mm256_set1_pd(kZfprMaxIndexMagnitude);
  const __m256d vdom = _mm256_set1_pd(kRoundDomain);
  __m256i or_zz = _mm256_setzero_si256();
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const __m256d t = _mm256_div_pd(_mm256_loadu_pd(c + j), vbin);
    const __m256d at = abs_pd(t);
    if (_mm256_movemask_pd(_mm256_cmp_pd(at, vlim, _CMP_LT_OQ)) != 0xF)
      return kZfprEscape;
    if (_mm256_movemask_pd(_mm256_cmp_pd(at, vdom, _CMP_LT_OQ)) != 0xF)
      return zfpr_census_group_ref(c, n, bin);
    const Rounded4 rv = round_half_away(t);
    const __m256i sgn = _mm256_cmpgt_epi64(_mm256_setzero_si256(), rv.k);
    or_zz = _mm256_or_si256(
        or_zz, _mm256_xor_si256(_mm256_slli_epi64(rv.k, 1), sgn));
  }
  alignas(32) std::uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), or_zz);
  std::uint64_t all = (lanes[0] | lanes[1]) | (lanes[2] | lanes[3]);
  for (; j < n; ++j) {
    const double v = c[j];
    if (!(std::abs(v) / bin < kZfprMaxIndexMagnitude)) return kZfprEscape;
    all |= zigzag_encode_ref(std::llround(v / bin));
  }
  return all == 0 ? 0u : static_cast<unsigned>(std::bit_width(all));
}

// --- Lorenzo 2-D predict + quantize ---------------------------------------

/// Lane l gets lane l-1's value; lane 0 gets s.
inline __m256d shift_lanes_up(__m256d v, double s) {
  const __m256d rot = _mm256_permute4x64_pd(v, _MM_SHUFFLE(2, 1, 0, 0));
  return _mm256_blend_pd(rot, _mm256_set1_pd(s), 0x1);
}

/// Serial reference pass over a single row with i0 >= 1 (used for the
/// n0 % 4 remainder rows; the caller sweeps code==0 points into the
/// outlier list afterwards).
template <typename T>
void lorenzo2_row_serial(const T* values, std::size_t i0, std::size_t n1,
                         double eb, std::uint32_t bins, std::uint32_t* codes,
                         T* recon) {
  const std::uint32_t radius = bins / 2;
  const double lo = 1.0 - static_cast<double>(radius);
  const double hi = static_cast<double>(bins - 1 - radius);
  const double inv_bin = 2.0 * eb;
  std::size_t idx = i0 * n1;
  for (std::size_t i1 = 0; i1 < n1; ++i1, ++idx) {
    const double west = i1 > 0 ? static_cast<double>(recon[idx - 1]) : 0.0;
    const double north = static_cast<double>(recon[idx - n1]);
    const double nw =
        i1 > 0 ? static_cast<double>(recon[idx - n1 - 1]) : 0.0;
    const double pred = west + north - nw;
    const double orig = static_cast<double>(values[idx]);
    const double scaled = (orig - pred) / inv_bin;
    std::uint32_t code = 0;
    if (std::isfinite(scaled)) {
      const double rounded = std::round(scaled);
      if (!(rounded < lo || rounded > hi))
        code = static_cast<std::uint32_t>(static_cast<std::int64_t>(rounded) +
                                          static_cast<std::int64_t>(radius));
    }
    if (code != 0) {
      const double deq =
          (static_cast<double>(code) - static_cast<double>(radius)) * 2.0 * eb;
      const T rec = static_cast<T>(pred + deq);
      if (std::abs(static_cast<double>(rec) - orig) <= eb) {
        codes[idx] = code;
        recon[idx] = rec;
        continue;
      }
    }
    codes[idx] = 0;
    recon[idx] = values[idx];
  }
}

/// One block of 4 consecutive rows (ib..ib+3) as a skewed anti-diagonal
/// pipeline: at step t, lane l handles column t-l of row ib+l. west is the
/// lane's own previous step, north/nw are lane shifts of the previous two
/// steps (lane 0 reads the finished row ib-1 from memory), so every
/// dependency is available the step it is needed and each point's
/// arithmetic matches the serial reference bit for bit. Inactive fill and
/// drain lanes compute garbage that provably never feeds an active lane.
template <typename T>
void lorenzo2_block4(const T* values, std::size_t ib, std::size_t n1,
                     double eb, std::uint32_t bins, std::uint32_t* codes,
                     T* recon) {
  const std::uint32_t radius = bins / 2;
  const __m256d v_lo = _mm256_set1_pd(1.0 - static_cast<double>(radius));
  const __m256d v_hi = _mm256_set1_pd(static_cast<double>(bins - 1 - radius));
  const __m256d v_inv_bin = _mm256_set1_pd(2.0 * eb);
  const __m256d v_eb = _mm256_set1_pd(eb);
  const __m256d v_two = _mm256_set1_pd(2.0);
  const __m256d v_dom = _mm256_set1_pd(kRoundDomain);
  const __m256i v_radius = _mm256_set1_epi64x(static_cast<long long>(radius));
  // Masks that zero lane t (the lane whose column is 0 at step t).
  alignas(32) static constexpr std::uint64_t kKill[4][4] = {
      {0, ~0ull, ~0ull, ~0ull},
      {~0ull, 0, ~0ull, ~0ull},
      {~0ull, ~0ull, 0, ~0ull},
      {~0ull, ~0ull, ~0ull, 0}};
  const T* above = ib > 0 ? recon + (ib - 1) * n1 : nullptr;
  __m256d rec_prev1 = _mm256_setzero_pd();
  __m256d rec_prev2 = _mm256_setzero_pd();
  for (std::size_t t = 0; t < n1 + 3; ++t) {
    const std::size_t l_min = t >= n1 ? t - n1 + 1 : 0;
    const std::size_t l_max = t < 3 ? t : 3;
    alignas(32) double o[4] = {0.0, 0.0, 0.0, 0.0};
    for (std::size_t l = l_min; l <= l_max; ++l)
      o[l] = static_cast<double>(values[(ib + l) * n1 + (t - l)]);
    const __m256d orig = _mm256_load_pd(o);
    const double north0 =
        (above != nullptr && t < n1) ? static_cast<double>(above[t]) : 0.0;
    const double nw0 = (above != nullptr && t >= 1 && t - 1 < n1)
                           ? static_cast<double>(above[t - 1])
                           : 0.0;
    __m256d west = rec_prev1;
    __m256d north = shift_lanes_up(rec_prev1, north0);
    __m256d nw = shift_lanes_up(rec_prev2, nw0);
    if (t < 4) {
      // Column 0 lane: west and nw neighbours do not exist.
      const __m256d kill = _mm256_castsi256_pd(_mm256_load_si256(
          reinterpret_cast<const __m256i*>(kKill[t])));
      west = _mm256_and_pd(west, kill);
      nw = _mm256_and_pd(nw, kill);
    }
    const __m256d pred = _mm256_sub_pd(_mm256_add_pd(west, north), nw);
    const __m256d scaled =
        _mm256_div_pd(_mm256_sub_pd(orig, pred), v_inv_bin);
    // One mask covers NaN, Inf and the >= 2^50 rounding domain: all of
    // them quantize to code 0 in the reference (anything that large is out
    // of the radius range anyway).
    const __m256d in_dom =
        _mm256_cmp_pd(abs_pd(scaled), v_dom, _CMP_LT_OQ);
    const Rounded4 rv = round_half_away(scaled);
    const __m256d in_range =
        _mm256_and_pd(_mm256_cmp_pd(rv.r, v_lo, _CMP_GE_OQ),
                      _mm256_cmp_pd(rv.r, v_hi, _CMP_LE_OQ));
    const __m256d code_ok = _mm256_and_pd(in_dom, in_range);
    const __m256d deq = _mm256_mul_pd(_mm256_mul_pd(rv.r, v_two), v_eb);
    __m256d rec_d = _mm256_add_pd(pred, deq);
    if constexpr (sizeof(T) == 4)
      rec_d = _mm256_cvtps_pd(_mm256_cvtpd_ps(rec_d));
    const __m256d guard_ok = _mm256_cmp_pd(
        abs_pd(_mm256_sub_pd(rec_d, orig)), v_eb, _CMP_LE_OQ);
    const __m256d ok = _mm256_and_pd(code_ok, guard_ok);
    const __m256d rec_next = _mm256_blendv_pd(orig, rec_d, ok);
    const __m256i code_i = _mm256_add_epi64(rv.k, v_radius);
    const int okm = _mm256_movemask_pd(ok);
    alignas(32) double rec_out[4];
    alignas(32) std::int64_t ki[4];
    _mm256_store_pd(rec_out, rec_next);
    _mm256_store_si256(reinterpret_cast<__m256i*>(ki), code_i);
    for (std::size_t l = l_min; l <= l_max; ++l) {
      const std::size_t idx = (ib + l) * n1 + (t - l);
      if ((okm >> l) & 1) {
        codes[idx] = static_cast<std::uint32_t>(ki[l]);
        recon[idx] = static_cast<T>(rec_out[l]);
      } else {
        codes[idx] = 0;
        recon[idx] = values[idx];
      }
    }
    rec_prev2 = rec_prev1;
    rec_prev1 = rec_next;
  }
}

template <typename T>
std::size_t lorenzo2_quant_avx2(const T* values, std::size_t n0,
                                std::size_t n1, double eb, std::uint32_t bins,
                                std::uint32_t* codes, T* recon, T* outliers) {
  if (n0 < 5 || n1 < 8)
    return lorenzo2_quant_ref(values, n0, n1, eb, bins, codes, recon,
                              outliers);
  const std::size_t blocks = n0 / 4;
  for (std::size_t b = 0; b < blocks; ++b)
    lorenzo2_block4(values, b * 4, n1, eb, bins, codes, recon);
  for (std::size_t i0 = blocks * 4; i0 < n0; ++i0)
    lorenzo2_row_serial(values, i0, n1, eb, bins, codes, recon);
  // code 0 <=> outlier, so one sweep recovers the scan-order outlier list
  // regardless of the order the wavefront visited points in.
  std::size_t n_out = 0;
  const std::size_t total = n0 * n1;
  for (std::size_t idx = 0; idx < total; ++idx)
    if (codes[idx] == 0) outliers[n_out++] = values[idx];
  return n_out;
}

// --- SSE accumulators ------------------------------------------------------

inline double fold_sse(__m256d vacc) {
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, vacc);
  return (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
}

double sse_f32_avx2(const float* a, const float* b, std::size_t n) {
  __m256d vacc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d e = _mm256_sub_pd(_mm256_cvtps_pd(_mm_loadu_ps(a + i)),
                                    _mm256_cvtps_pd(_mm_loadu_ps(b + i)));
    vacc = _mm256_add_pd(vacc, _mm256_mul_pd(e, e));
  }
  double total = fold_sse(vacc);
  for (; i < n; ++i) {
    const double e = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    total += e * e;
  }
  return total;
}

double sse_f64_avx2(const double* a, const double* b, std::size_t n) {
  __m256d vacc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d e =
        _mm256_sub_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i));
    vacc = _mm256_add_pd(vacc, _mm256_mul_pd(e, e));
  }
  double total = fold_sse(vacc);
  for (; i < n; ++i) {
    const double e = a[i] - b[i];
    total += e * e;
  }
  return total;
}

double sse_cast_f32_avx2(const float* values, const double* recon,
                         std::size_t n) {
  __m256d vacc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d rec = _mm256_cvtps_pd(
        _mm256_cvtpd_ps(_mm256_loadu_pd(recon + i)));
    const __m256d e =
        _mm256_sub_pd(_mm256_cvtps_pd(_mm_loadu_ps(values + i)), rec);
    vacc = _mm256_add_pd(vacc, _mm256_mul_pd(e, e));
  }
  double total = fold_sse(vacc);
  for (; i < n; ++i) {
    const double e = static_cast<double>(values[i]) -
                     static_cast<double>(static_cast<float>(recon[i]));
    total += e * e;
  }
  return total;
}

}  // namespace

const KernelTable* avx2_kernel_table() {
  static const KernelTable table{
      "avx2",
      &haar_fwd_pairs_avx2,
      &haar_inv_pairs_avx2,
      &dct2_line_avx2,
      &dct3_line_avx2,
      &zfpr_quant_group_avx2,
      &zfpr_census_group_avx2,
      &huffman_pack_ref,
      &lorenzo2_quant_avx2<float>,
      &lorenzo2_quant_avx2<double>,
      &sse_f32_avx2,
      &sse_f64_avx2,
      &sse_cast_f32_avx2,
  };
  return &table;
}

}  // namespace fpsnr::simd

#else  // !(x86-64 with AVX2 enabled for this TU)

namespace fpsnr::simd {
const KernelTable* avx2_kernel_table() { return nullptr; }
}  // namespace fpsnr::simd

#endif
