// Reference (scalar) kernel implementations shared by every backend TU.
//
// These are the bit-exactness ground truth: the scalar backend's table
// points straight at them, and the ISA backends call them for loop tails
// and domain fallbacks. They live in an ANONYMOUS namespace on purpose:
// each backend translation unit is compiled with different target flags
// (-mavx2 etc.), so the copies must have internal linkage — if they were
// ordinary inline functions the linker could merge them and hand the
// scalar dispatch a copy compiled with AVX2 codegen, crashing pre-AVX2
// hosts. Internal linkage keeps each TU's copy inside that TU.
//
// Every function reproduces the original scalar loop it replaced verbatim
// (same expressions, same evaluation order, same rounding); see the
// contracts in simd/kernels.h.
#pragma once

#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>

#include "simd/kernels.h"

namespace fpsnr::simd {
namespace {

// --- Haar ------------------------------------------------------------------

inline void haar_fwd_pairs_ref(const double* line, double* approx,
                               double* detail, std::size_t pairs, double c) {
  for (std::size_t k = 0; k < pairs; ++k) {
    approx[k] = (line[2 * k] + line[2 * k + 1]) * c;
    detail[k] = (line[2 * k] - line[2 * k + 1]) * c;
  }
}

inline void haar_inv_pairs_ref(const double* approx, const double* detail,
                               double* line, std::size_t pairs, double c) {
  for (std::size_t k = 0; k < pairs; ++k) {
    line[2 * k] = (approx[k] + detail[k]) * c;
    line[2 * k + 1] = (approx[k] - detail[k]) * c;
  }
}

// --- DCT -------------------------------------------------------------------

inline void dct2_line_ref(const double* x, double* y, std::size_t m,
                          const double* tab_jk, const double* tab_kj,
                          double s0, double sk) {
  (void)tab_jk;
  for (std::size_t k = 0; k < m; ++k) {
    const double* col = tab_kj + k * m;
    double acc = 0.0;
    for (std::size_t j = 0; j < m; ++j) acc += x[j] * col[j];
    y[k] = (k == 0 ? s0 : sk) * acc;
  }
}

inline void dct3_line_ref(const double* y, double* x, std::size_t m,
                          const double* tab_jk, const double* tab_kj,
                          double s0, double sk) {
  (void)tab_kj;
  for (std::size_t j = 0; j < m; ++j) {
    const double* row = tab_jk + j * m;
    double acc = s0 * y[0];
    for (std::size_t k = 1; k < m; ++k) acc += (sk * y[k]) * row[k];
    x[j] = acc;
  }
}

// --- zfpr group quantization ----------------------------------------------

inline std::uint64_t zigzag_encode_ref(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

inline unsigned zfpr_quant_group_ref(const double* c, std::size_t n,
                                     double bin, std::uint64_t* zz,
                                     double* recon) {
  std::uint64_t max_zz = 0;
  for (std::size_t j = 0; j < n; ++j) {
    const double v = c[j];
    if (!(std::abs(v) / bin < kZfprMaxIndexMagnitude)) return kZfprEscape;
    const std::int64_t k = std::llround(v / bin);
    recon[j] = static_cast<double>(k) * bin;
    zz[j] = zigzag_encode_ref(k);
    max_zz = max_zz < zz[j] ? zz[j] : max_zz;
  }
  return max_zz == 0 ? 0u : static_cast<unsigned>(std::bit_width(max_zz));
}

inline unsigned zfpr_census_group_ref(const double* c, std::size_t n,
                                      double bin) {
  std::uint64_t max_zz = 0;
  for (std::size_t j = 0; j < n; ++j) {
    const double v = c[j];
    if (!(std::abs(v) / bin < kZfprMaxIndexMagnitude)) return kZfprEscape;
    const std::uint64_t z = zigzag_encode_ref(std::llround(v / bin));
    max_zz = max_zz < z ? z : max_zz;
  }
  return max_zz == 0 ? 0u : static_cast<unsigned>(std::bit_width(max_zz));
}

// --- Huffman pack ----------------------------------------------------------

inline std::size_t huffman_pack_ref(const std::uint32_t* syms, std::size_t n,
                                    const std::uint64_t* entries,
                                    std::size_t alphabet, std::uint64_t* words,
                                    std::uint64_t* carry, unsigned* carry_bits,
                                    std::size_t* bad_index) {
  std::uint64_t acc = *carry;
  unsigned bits = *carry_bits;
  std::size_t nw = 0;
  *bad_index = kNoBadSymbol;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t s = syms[i];
    if (s >= alphabet) { *bad_index = i; break; }
    const std::uint64_t e = entries[s];
    const unsigned len = static_cast<unsigned>(e >> 32);
    if (len == 0) { *bad_index = i; break; }
    const std::uint64_t code = e & 0xFFFFFFFFu;
    acc |= code << bits;  // bits < 64 by the flush below
    bits += len;
    if (bits >= 64) {
      words[nw++] = acc;
      bits -= 64;
      // bits < len here, so (len - bits) is a valid shift in [1, 32].
      acc = bits == 0 ? 0 : code >> (len - bits);
    }
  }
  *carry = acc;
  *carry_bits = bits;
  return nw;
}

// --- Lorenzo 2-D predict + quantize ---------------------------------------

/// Exact semantics of sz::quantize_pass + LorenzoPredictor rank 2 +
/// LinearQuantizer, fused into one rank-specialized pass.
template <typename T>
inline std::size_t lorenzo2_quant_ref(const T* values, std::size_t n0,
                                      std::size_t n1, double eb,
                                      std::uint32_t bins, std::uint32_t* codes,
                                      T* recon, T* outliers) {
  const std::uint32_t radius = bins / 2;
  const double lo = 1.0 - static_cast<double>(radius);
  const double hi = static_cast<double>(bins - 1 - radius);
  const double inv_bin = 2.0 * eb;
  std::size_t n_out = 0;
  std::size_t idx = 0;
  for (std::size_t i0 = 0; i0 < n0; ++i0) {
    for (std::size_t i1 = 0; i1 < n1; ++i1, ++idx) {
      const double west =
          i1 > 0 ? static_cast<double>(recon[idx - 1]) : 0.0;
      const double north =
          i0 > 0 ? static_cast<double>(recon[idx - n1]) : 0.0;
      const double nw = (i0 > 0 && i1 > 0)
                            ? static_cast<double>(recon[idx - n1 - 1])
                            : 0.0;
      const double pred = west + north - nw;
      const double orig = static_cast<double>(values[idx]);
      const double scaled = (orig - pred) / inv_bin;
      std::uint32_t code = 0;
      if (std::isfinite(scaled)) {
        const double rounded = std::round(scaled);
        if (!(rounded < lo || rounded > hi))
          code = static_cast<std::uint32_t>(
              static_cast<std::int64_t>(rounded) +
              static_cast<std::int64_t>(radius));
      }
      if (code != 0) {
        const double deq =
            (static_cast<double>(code) - static_cast<double>(radius)) * 2.0 *
            eb;
        const T rec = static_cast<T>(pred + deq);
        if (std::abs(static_cast<double>(rec) - orig) <= eb) {
          codes[idx] = code;
          recon[idx] = rec;
          continue;
        }
      }
      codes[idx] = 0;
      outliers[n_out++] = values[idx];
      recon[idx] = values[idx];
    }
  }
  return n_out;
}

// --- SSE accumulators ------------------------------------------------------

inline double sse_f32_ref(const float* a, const float* b, std::size_t n) {
  double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const double e0 = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    const double e1 =
        static_cast<double>(a[i + 1]) - static_cast<double>(b[i + 1]);
    const double e2 =
        static_cast<double>(a[i + 2]) - static_cast<double>(b[i + 2]);
    const double e3 =
        static_cast<double>(a[i + 3]) - static_cast<double>(b[i + 3]);
    a0 += e0 * e0;
    a1 += e1 * e1;
    a2 += e2 * e2;
    a3 += e3 * e3;
  }
  double total = (a0 + a1) + (a2 + a3);
  for (; i < n; ++i) {
    const double e = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    total += e * e;
  }
  return total;
}

inline double sse_f64_ref(const double* a, const double* b, std::size_t n) {
  double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const double e0 = a[i] - b[i];
    const double e1 = a[i + 1] - b[i + 1];
    const double e2 = a[i + 2] - b[i + 2];
    const double e3 = a[i + 3] - b[i + 3];
    a0 += e0 * e0;
    a1 += e1 * e1;
    a2 += e2 * e2;
    a3 += e3 * e3;
  }
  double total = (a0 + a1) + (a2 + a3);
  for (; i < n; ++i) {
    const double e = a[i] - b[i];
    total += e * e;
  }
  return total;
}

inline double sse_cast_f32_ref(const float* values, const double* recon,
                               std::size_t n) {
  double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const double e0 = static_cast<double>(values[i]) -
                      static_cast<double>(static_cast<float>(recon[i]));
    const double e1 = static_cast<double>(values[i + 1]) -
                      static_cast<double>(static_cast<float>(recon[i + 1]));
    const double e2 = static_cast<double>(values[i + 2]) -
                      static_cast<double>(static_cast<float>(recon[i + 2]));
    const double e3 = static_cast<double>(values[i + 3]) -
                      static_cast<double>(static_cast<float>(recon[i + 3]));
    a0 += e0 * e0;
    a1 += e1 * e1;
    a2 += e2 * e2;
    a3 += e3 * e3;
  }
  double total = (a0 + a1) + (a2 + a3);
  for (; i < n; ++i) {
    const double e = static_cast<double>(values[i]) -
                     static_cast<double>(static_cast<float>(recon[i]));
    total += e * e;
  }
  return total;
}

}  // namespace
}  // namespace fpsnr::simd
