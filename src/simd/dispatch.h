// Runtime SIMD backend selection.
//
// Detection order: FPSNR_SIMD environment override (auto|scalar|avx2|neon),
// then CPUID (AVX2 on x86-64 via __builtin_cpu_supports, NEON is baseline
// on aarch64), else the scalar reference. Forcing an unsupported backend —
// via the env var or force_backend() — falls back loudly to scalar instead
// of executing illegal instructions; every backend produces bit-identical
// archives, so a fallback is a performance note, never a correctness event.
#pragma once

#include <optional>
#include <string_view>
#include <vector>

#include "simd/kernels.h"

namespace fpsnr::simd {

enum class Backend : int { Scalar = 0, Avx2 = 1, Neon = 2 };

/// Stable lowercase name ("scalar", "avx2", "neon").
const char* backend_name(Backend b);

/// Parse "auto"/"scalar"/"avx2"/"neon" (case-sensitive, matching the CLI
/// and env-var contract). Returns false on an unrecognized name; "auto"
/// succeeds with *out left empty.
bool parse_backend(std::string_view name, std::optional<Backend>* out);

/// True when this build AND this host can execute the backend's kernels.
bool backend_supported(Backend b);

/// All supported backends, scalar first (test suites iterate this).
std::vector<Backend> supported_backends();

/// The backend kernels() currently dispatches to.
Backend active_backend();

/// Pin the dispatched backend (tests / CLI --simd). Returns false and
/// leaves the state unchanged if the backend is unsupported here. Not
/// intended to race with in-flight compression.
bool force_backend(Backend b);

/// Drop any force_backend pin and return to env/CPUID selection.
void reset_backend();

/// Kernel table of the active backend.
const KernelTable& kernels();

/// Kernel table of a specific backend (must be supported; the scalar
/// table is always available and is the bit-exactness reference).
const KernelTable& kernels_for(Backend b);

}  // namespace fpsnr::simd
