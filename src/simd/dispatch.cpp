#include "simd/dispatch.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace fpsnr::simd {

// Backend tables. The scalar table is always linked; the ISA tables come
// from their own translation units (compiled with the matching target
// flags) and report themselves as null when the build cannot produce them,
// so dispatch never hands out a table the binary cannot execute.
const KernelTable& scalar_kernel_table();
const KernelTable* avx2_kernel_table();  // null unless built for x86-64+AVX2
const KernelTable* neon_kernel_table();  // null unless built for aarch64

namespace {

/// -1 = no pin; otherwise the forced Backend value.
std::atomic<int> g_forced{-1};

bool host_supports_avx2() {
#if (defined(__x86_64__) || defined(_M_X64)) && defined(__GNUC__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

Backend detect() {
  if (avx2_kernel_table() != nullptr && host_supports_avx2())
    return Backend::Avx2;
  if (neon_kernel_table() != nullptr) return Backend::Neon;  // aarch64 baseline
  return Backend::Scalar;
}

Backend env_or_detect() {
  const char* env = std::getenv("FPSNR_SIMD");
  if (env != nullptr && *env != '\0') {
    std::optional<Backend> parsed;
    if (!parse_backend(env, &parsed)) {
      std::fprintf(stderr,
                   "fpsnr: unrecognized FPSNR_SIMD=%s (want "
                   "auto|scalar|avx2|neon); using auto detection\n",
                   env);
    } else if (parsed.has_value()) {
      if (backend_supported(*parsed)) return *parsed;
      std::fprintf(stderr,
                   "fpsnr: FPSNR_SIMD=%s is not supported on this host; "
                   "falling back to scalar kernels\n",
                   env);
      return Backend::Scalar;
    }
  }
  return detect();
}

}  // namespace

const char* backend_name(Backend b) {
  switch (b) {
    case Backend::Scalar: return "scalar";
    case Backend::Avx2: return "avx2";
    case Backend::Neon: return "neon";
  }
  return "unknown";
}

bool parse_backend(std::string_view name, std::optional<Backend>* out) {
  if (name == "auto") { out->reset(); return true; }
  if (name == "scalar") { *out = Backend::Scalar; return true; }
  if (name == "avx2") { *out = Backend::Avx2; return true; }
  if (name == "neon") { *out = Backend::Neon; return true; }
  return false;
}

bool backend_supported(Backend b) {
  switch (b) {
    case Backend::Scalar: return true;
    case Backend::Avx2:
      return avx2_kernel_table() != nullptr && host_supports_avx2();
    case Backend::Neon: return neon_kernel_table() != nullptr;
  }
  return false;
}

std::vector<Backend> supported_backends() {
  std::vector<Backend> out{Backend::Scalar};
  if (backend_supported(Backend::Avx2)) out.push_back(Backend::Avx2);
  if (backend_supported(Backend::Neon)) out.push_back(Backend::Neon);
  return out;
}

Backend active_backend() {
  const int forced = g_forced.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<Backend>(forced);
  // The env/CPUID choice is immutable per process; a magic static keeps
  // the first concurrent callers race-free.
  static const Backend auto_backend = env_or_detect();
  return auto_backend;
}

bool force_backend(Backend b) {
  if (!backend_supported(b)) return false;
  g_forced.store(static_cast<int>(b), std::memory_order_relaxed);
  return true;
}

void reset_backend() { g_forced.store(-1, std::memory_order_relaxed); }

const KernelTable& kernels() { return kernels_for(active_backend()); }

const KernelTable& kernels_for(Backend b) {
  switch (b) {
    case Backend::Scalar: return scalar_kernel_table();
    case Backend::Avx2:
      if (const KernelTable* t = avx2_kernel_table()) return *t;
      break;
    case Backend::Neon:
      if (const KernelTable* t = neon_kernel_table()) return *t;
      break;
  }
  throw std::logic_error("simd: kernels_for on an unsupported backend");
}

}  // namespace fpsnr::simd
