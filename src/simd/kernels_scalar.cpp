// Scalar backend: the portable bit-exactness reference every ISA backend
// is tested against. This TU is compiled with the project's baseline flags
// only — no -m options — so the table is executable on any supported host.
#include "simd/kernels.h"
#include "simd/kernels_ref.h"

namespace fpsnr::simd {

const KernelTable& scalar_kernel_table() {
  static const KernelTable table{
      "scalar",
      &haar_fwd_pairs_ref,
      &haar_inv_pairs_ref,
      &dct2_line_ref,
      &dct3_line_ref,
      &zfpr_quant_group_ref,
      &zfpr_census_group_ref,
      &huffman_pack_ref,
      &lorenzo2_quant_ref<float>,
      &lorenzo2_quant_ref<double>,
      &sse_f32_ref,
      &sse_f64_ref,
      &sse_cast_f32_ref,
  };
  return table;
}

}  // namespace fpsnr::simd
