// Portable vector-kernel table: one set of function pointers per backend.
//
// Every kernel here is a pure data-parallel restructuring of an existing
// scalar inner loop, under one hard contract: **bit-exact output parity
// with the scalar reference on every backend**. Archives must not depend
// on which ISA encoded them, and the checked-in golden archives must keep
// decoding bit-exactly, so each kernel preserves the reference
// floating-point expression, evaluation order, and rounding exactly:
//
//  * Vector lanes only ever span *independent* outputs; any accumulation
//    that feeds a single output keeps the reference's sequential order
//    (no reassociation, no multi-accumulator reductions into one value).
//  * No FMA contraction anywhere: the AVX2 translation unit is compiled
//    with -mno-fma and uses separate mul/add intrinsics, the NEON one
//    avoids the fused vfma forms, and every src/ TU builds with
//    -ffp-contract=off.
//  * Rounding helpers (std::round / std::llround emulations) are proven
//    equal to the libm semantics over the domain they are used on, and
//    fall back to the scalar path outside it.
//
// The one deliberately *defined* (rather than inherited) contract is the
// SSE accumulators: they specify a fixed virtual-4-lane summation order
// (see below) that every backend reproduces exactly, so the recorded
// achieved-SSE is still identical across backends and thread counts.
#pragma once

#include <cstddef>
#include <cstdint>

namespace fpsnr::simd {

/// zfpr group-width return value announcing a raw-double escape group.
inline constexpr unsigned kZfprEscape = 0xFFu;

/// zfpr escape threshold: a group escapes to raw doubles when any
/// |coefficient/bin| fails to stay below this (NaN included, because the
/// comparison is written !(x < limit)). Shared with fixed_rate.cpp.
inline constexpr double kZfprMaxIndexMagnitude = 4.0e18;

/// Sentinel for huffman_pack's bad_index out-parameter: no invalid symbol.
inline constexpr std::size_t kNoBadSymbol = static_cast<std::size_t>(-1);

struct KernelTable {
  /// Backend name for logs/benchmarks ("scalar", "avx2", "neon").
  const char* name;

  // --- Haar butterflies (src/transform/haar.cpp) -------------------------
  // Forward: approx[k] = (line[2k] + line[2k+1]) * c
  //          detail[k] = (line[2k] - line[2k+1]) * c
  // Inverse: line[2k]   = (approx[k] + detail[k]) * c
  //          line[2k+1] = (approx[k] - detail[k]) * c
  // Each pair is independent; c is the caller's 1/sqrt(2).
  void (*haar_fwd_pairs)(const double* line, double* approx, double* detail,
                         std::size_t pairs, double c);
  void (*haar_inv_pairs)(const double* approx, const double* detail,
                         double* line, std::size_t pairs, double c);

  // --- DCT lines over precomputed cosine tables (src/transform/dct.cpp) --
  // tab_jk[j*m + k] and tab_kj[k*m + j] hold the SAME double
  // cos(pi (j+0.5) k / m); the two layouts exist so both the scalar
  // reference and the lane-per-output vector form stream contiguously.
  // dct2: y[k] = (k==0 ? s0 : sk) * sum_j x[j]*tab[j][k], j ascending.
  // dct3: x[j] = s0*y[0] + sum_{k>=1} (sk*y[k])*tab[j][k], k ascending.
  // Lanes run over outputs (k resp. j); each lane's sum stays sequential,
  // so the result is bit-identical to the scalar loops.
  void (*dct2_line)(const double* x, double* y, std::size_t m,
                    const double* tab_jk, const double* tab_kj,
                    double s0, double sk);
  void (*dct3_line)(const double* y, double* x, std::size_t m,
                    const double* tab_jk, const double* tab_kj,
                    double s0, double sk);

  // --- zfpr bit-plane group quantization (src/transform/fixed_rate.cpp) --
  // For each j: t = c[j]/bin; if !(|t| < 4.0e18) the group escapes
  // (returns kZfprEscape; zz/recon contents are then unspecified).
  // Otherwise k = llround(t), recon[j] = double(k)*bin,
  // zz[j] = zigzag(k); returns bit_width(max zz) (0 if all zero).
  // zfpr_census_group is the encode-free variant used by the rate seed.
  unsigned (*zfpr_quant_group)(const double* c, std::size_t n, double bin,
                               std::uint64_t* zz, double* recon);
  unsigned (*zfpr_census_group)(const double* c, std::size_t n, double bin);

  // --- Huffman pack (src/huffman/huffman.cpp) ----------------------------
  // entries[s] = reversed_code(s) | uint64(code_length(s)) << 32, for the
  // dense alphabet [0, alphabet). Packs the LSB-first codes of syms[0..n)
  // starting from the (*carry, *carry_bits) accumulator state, emits every
  // completed 64-bit word into words[] (caller guarantees capacity
  // >= (n*32 + 63)/64 + 1) and returns the word count; the <64-bit
  // remainder is left in the carry state. Writing the words with
  // BitWriter::write_bits(w, 64) followed by the final carry reproduces
  // the per-symbol encode_symbol stream bit for bit. A symbol outside the
  // alphabet or with length 0 stops the pack and reports its position via
  // *bad_index (kNoBadSymbol otherwise).
  std::size_t (*huffman_pack)(const std::uint32_t* syms, std::size_t n,
                              const std::uint64_t* entries,
                              std::size_t alphabet, std::uint64_t* words,
                              std::uint64_t* carry, unsigned* carry_bits,
                              std::size_t* bad_index);

  // --- Lorenzo 2-D predict + quantize (src/sz/codec.cpp) -----------------
  // Whole-field rank-2 quantize pass with the exact semantics of
  // quantize_pass + LorenzoPredictor + LinearQuantizer: per point
  //   pred = (west + north) - nw        (missing neighbours read 0.0)
  //   code = quantize((double)value - pred) with the T-cast bound guard;
  // codes/recon are written in C scan order, outliers (capacity n0*n1,
  // caller-provided) are appended in scan order; returns the outlier
  // count. The reconstruction feedback makes the scan serial; vector
  // backends pipeline anti-diagonal wavefronts of independent rows while
  // replicating each point's arithmetic exactly.
  std::size_t (*lorenzo2_quant_f32)(const float* values, std::size_t n0,
                                    std::size_t n1, double eb,
                                    std::uint32_t bins, std::uint32_t* codes,
                                    float* recon, float* outliers);
  std::size_t (*lorenzo2_quant_f64)(const double* values, std::size_t n0,
                                    std::size_t n1, double eb,
                                    std::uint32_t bins, std::uint32_t* codes,
                                    double* recon, double* outliers);

  // --- Sum of squared errors (achieved-SSE accounting) -------------------
  // DEFINED summation order shared by all backends: four virtual lanes
  // acc[l] over elements i ≡ l (mod 4) for i < 4*(n/4), folded as
  // (acc0+acc1) + (acc2+acc3), then tail elements added sequentially.
  // sse_f32/f64: err = double(a[i]) - double(b[i]).
  // sse_cast_f32: err = double(v[i]) - double(float(recon[i])) — the
  // decode-replay form used by the transform codecs.
  double (*sse_f32)(const float* a, const float* b, std::size_t n);
  double (*sse_f64)(const double* a, const double* b, std::size_t n);
  double (*sse_cast_f32)(const float* values, const double* recon,
                         std::size_t n);
};

}  // namespace fpsnr::simd
