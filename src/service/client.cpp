// fpsnr::service::Client — the blocking side of the fpsnrd protocol.
// One request in flight per connection: build a payload, send a frame,
// read exactly one Reply or Error frame back. Error frames surface as
// ServiceError with the server's typed code; transport failures surface
// as ServiceError{Internal}.
#include "fpsnr/service.h"

#if !defined(_WIN32)

#include <sys/socket.h>
#include <sys/un.h>
#include <netinet/in.h>
#include <arpa/inet.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "service/wire.h"

namespace fpsnr::service {

struct Client::Impl {
  int fd = -1;

  ~Impl() {
    if (fd >= 0) ::close(fd);
  }

  void connect(const Endpoint& endpoint) {
    const bool unix_socket = !endpoint.socket_path.empty();
    if (unix_socket == (endpoint.tcp_port != 0))
      throw std::invalid_argument(
          "fpsnr client: set exactly one of socket_path or tcp_port");
    if (unix_socket) {
      sockaddr_un addr{};
      addr.sun_family = AF_UNIX;
      if (endpoint.socket_path.size() >= sizeof(addr.sun_path))
        throw std::invalid_argument("fpsnr client: socket path too long: " +
                                    endpoint.socket_path);
      std::strncpy(addr.sun_path, endpoint.socket_path.c_str(),
                   sizeof(addr.sun_path) - 1);
      fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
      if (fd < 0 || ::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                              sizeof(addr)) < 0)
        throw ServiceError(ErrorCode::Internal,
                           "cannot connect to " + endpoint.socket_path + ": " +
                               std::strerror(errno));
    } else {
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
      addr.sin_port = htons(endpoint.tcp_port);
      fd = ::socket(AF_INET, SOCK_STREAM, 0);
      if (fd < 0 || ::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                              sizeof(addr)) < 0)
        throw ServiceError(ErrorCode::Internal,
                           "cannot connect to 127.0.0.1:" +
                               std::to_string(endpoint.tcp_port) + ": " +
                               std::strerror(errno));
    }
    // No receive timeout on the client: a large compress job legitimately
    // takes as long as it takes; the server bounds ITS reads instead.
    wire::set_socket_options(fd, /*recv_timeout_ms=*/0);
  }

  /// Send one request and read its one answer; Error frames throw.
  std::vector<std::uint8_t> round_trip(FrameType type,
                                       const std::vector<std::uint8_t>& payload) {
    try {
      wire::send_frame(fd, type, payload);
      wire::FrameHeader header;
      if (!wire::read_frame_header(fd, &header))
        throw ServiceError(ErrorCode::Internal,
                           "server closed the connection without a response");
      if (header.magic != kFrameMagic)
        throw ServiceError(ErrorCode::BadMagic, "response frame is not FPSD");
      std::vector<std::uint8_t> body(static_cast<std::size_t>(header.length));
      if (header.length > 0 &&
          !wire::read_exact(fd, body.data(), body.size()))
        throw ServiceError(ErrorCode::Internal, "truncated response frame");
      if (header.type == FrameType::Error) {
        wire::Reader r(body);
        const auto code = static_cast<ErrorCode>(r.u16());
        throw ServiceError(code, r.str());
      }
      if (header.type != FrameType::Reply)
        throw ServiceError(ErrorCode::BadFrame,
                           "unexpected response frame type");
      return body;
    } catch (const wire::WireError& e) {
      throw ServiceError(ErrorCode::Internal, e.what());
    }
  }

  static void scheduling_prefix(wire::Writer& w, const RequestOptions& options) {
    w.u8(options.priority ? 1 : 0);
    w.u32(options.deadline_ms);
  }

  template <typename T>
  CompressResult compress(std::span<const T> values, const CompressSpec& spec,
                          const RequestOptions& options) {
    wire::Writer w;
    scheduling_prefix(w, options);
    w.str(spec.engine);
    w.str(spec.budget);
    w.str(spec.mode);
    w.f64(spec.value);
    w.u8(static_cast<std::uint8_t>(spec.tile.size()));
    for (const std::size_t t : spec.tile) w.u64(t);
    w.u8(std::is_same_v<T, double> ? 1 : 0);
    w.u8(static_cast<std::uint8_t>(spec.dims.size()));
    for (const std::size_t d : spec.dims) w.u64(d);
    w.blob(values.data(), values.size_bytes());

    const auto body = round_trip(FrameType::Compress, w.bytes());
    wire::Reader r(body);
    CompressResult result;
    result.value_count = r.u64();
    result.compressed_bytes = r.u64();
    result.achieved_psnr_db = r.f64();
    result.bit_rate = r.f64();
    result.block_count = r.u64();
    const std::uint8_t tile_rank = r.u8();
    result.tile.resize(tile_rank);
    for (std::uint8_t t = 0; t < tile_rank; ++t)
      result.tile[t] = static_cast<std::size_t>(r.u64());
    const auto [archive, archive_bytes] = r.blob();
    r.expect_end();
    result.archive.assign(archive, archive + archive_bytes);
    return result;
  }

  template <typename T>
  SeriesResult compress_series(std::span<const T> values,
                               const SeriesSpec& spec,
                               const RequestOptions& options) {
    wire::Writer w;
    scheduling_prefix(w, options);
    w.str(spec.series);
    w.u32(spec.keyframe_interval);
    w.str(spec.engine);
    w.str(spec.budget);
    w.str(spec.mode);
    w.f64(spec.value);
    w.u8(static_cast<std::uint8_t>(spec.tile.size()));
    for (const std::size_t t : spec.tile) w.u64(t);
    w.u8(std::is_same_v<T, double> ? 1 : 0);
    w.u8(static_cast<std::uint8_t>(spec.dims.size()));
    for (const std::size_t d : spec.dims) w.u64(d);
    w.blob(values.data(), values.size_bytes());

    const auto body = round_trip(FrameType::CompressSeries, w.bytes());
    try {
      wire::Reader r(body);
      SeriesResult result;
      result.value_count = r.u64();
      result.compressed_bytes = r.u64();
      result.achieved_psnr_db = r.f64();
      result.bit_rate = r.f64();
      result.block_count = r.u64();
      const std::uint8_t tile_rank = r.u8();
      result.tile.resize(tile_rank);
      for (std::uint8_t t = 0; t < tile_rank; ++t)
        result.tile[t] = static_cast<std::size_t>(r.u64());
      const auto [archive, archive_bytes] = r.blob();
      result.archive.assign(archive, archive + archive_bytes);
      result.timestep = r.u64();
      result.keyframe = r.u8() != 0;
      result.temporal_blocks = r.u64();
      r.expect_end();
      return result;
    } catch (const wire::WireError& e) {
      throw ServiceError(ErrorCode::Internal, e.what());
    }
  }
};

Client::Client(Endpoint endpoint) : impl_(std::make_unique<Impl>()) {
  impl_->connect(endpoint);
}

Client::~Client() = default;
Client::Client(Client&&) noexcept = default;
Client& Client::operator=(Client&&) noexcept = default;

void Client::ping() { impl_->round_trip(FrameType::Ping, {}); }

CompressResult Client::compress(std::span<const float> values,
                                const CompressSpec& spec,
                                const RequestOptions& options) {
  return impl_->compress(values, spec, options);
}

CompressResult Client::compress(std::span<const double> values,
                                const CompressSpec& spec,
                                const RequestOptions& options) {
  return impl_->compress(values, spec, options);
}

SeriesResult Client::compress_series(std::span<const float> values,
                                     const SeriesSpec& spec,
                                     const RequestOptions& options) {
  return impl_->compress_series(values, spec, options);
}

SeriesResult Client::compress_series(std::span<const double> values,
                                     const SeriesSpec& spec,
                                     const RequestOptions& options) {
  return impl_->compress_series(values, spec, options);
}

Field Client::decompress(std::span<const std::uint8_t> archive,
                         const RequestOptions& options) {
  wire::Writer w;
  Impl::scheduling_prefix(w, options);
  w.blob(archive.data(), archive.size());
  const auto body = impl_->round_trip(FrameType::Decompress, w.bytes());
  try {
    wire::Reader r(body);
    Field field;
    const bool is_double = r.u8() == 1;
    const std::uint8_t rank = r.u8();
    field.dims.resize(rank);
    for (std::uint8_t d = 0; d < rank; ++d)
      field.dims[d] = static_cast<std::size_t>(r.u64());
    const auto [values, value_bytes] = r.blob();
    r.expect_end();
    if (is_double) {
      field.f64.resize(value_bytes / sizeof(double));
      if (value_bytes) std::memcpy(field.f64.data(), values, value_bytes);
    } else {
      field.f32.resize(value_bytes / sizeof(float));
      if (value_bytes) std::memcpy(field.f32.data(), values, value_bytes);
    }
    return field;
  } catch (const wire::WireError& e) {
    throw ServiceError(ErrorCode::Internal, e.what());
  }
}

std::string Client::inspect(std::span<const std::uint8_t> archive,
                            const RequestOptions& options) {
  wire::Writer w;
  Impl::scheduling_prefix(w, options);
  w.blob(archive.data(), archive.size());
  const auto body = impl_->round_trip(FrameType::Inspect, w.bytes());
  try {
    wire::Reader r(body);
    std::string text = r.str();
    r.expect_end();
    return text;
  } catch (const wire::WireError& e) {
    throw ServiceError(ErrorCode::Internal, e.what());
  }
}

std::string Client::stats() {
  const auto body = impl_->round_trip(FrameType::Stats, {});
  try {
    wire::Reader r(body);
    std::string text = r.str();
    r.expect_end();
    return text;
  } catch (const wire::WireError& e) {
    throw ServiceError(ErrorCode::Internal, e.what());
  }
}

void Client::shutdown_server() { impl_->round_trip(FrameType::Shutdown, {}); }

}  // namespace fpsnr::service

#else  // _WIN32

namespace fpsnr::service {

struct Client::Impl {};

Client::Client(Endpoint) {
  throw std::runtime_error("fpsnr client requires POSIX sockets");
}
Client::~Client() = default;
Client::Client(Client&&) noexcept = default;
Client& Client::operator=(Client&&) noexcept = default;
void Client::ping() {}
CompressResult Client::compress(std::span<const float>, const CompressSpec&,
                                const RequestOptions&) {
  return {};
}
CompressResult Client::compress(std::span<const double>, const CompressSpec&,
                                const RequestOptions&) {
  return {};
}
SeriesResult Client::compress_series(std::span<const float>,
                                     const SeriesSpec&,
                                     const RequestOptions&) {
  return {};
}
SeriesResult Client::compress_series(std::span<const double>,
                                     const SeriesSpec&,
                                     const RequestOptions&) {
  return {};
}
Field Client::decompress(std::span<const std::uint8_t>,
                         const RequestOptions&) {
  return {};
}
std::string Client::inspect(std::span<const std::uint8_t>,
                            const RequestOptions&) {
  return {};
}
std::string Client::stats() { return {}; }
void Client::shutdown_server() {}

}  // namespace fpsnr::service

#endif
