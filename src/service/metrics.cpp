#include "service/metrics.h"

#include <cmath>
#include <sstream>

namespace fpsnr::service {

void Metrics::record_latency(const std::string& engine, double micros) {
  std::lock_guard lock(mutex_);
  Latency& l = latency_by_engine_[engine];
  ++l.count;
  l.total_us += micros;
  if (micros > l.max_us) l.max_us = micros;
}

void Metrics::record_psnr(double psnr_db) {
  if (std::isnan(psnr_db)) {
    psnr_untracked_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (psnr_db < 0.0) {
    psnr_below_zero_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  int bucket = static_cast<int>(psnr_db / 20.0);  // +inf -> top bucket
  if (bucket >= kPsnrBuckets || std::isinf(psnr_db)) bucket = kPsnrBuckets - 1;
  psnr_buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
}

std::string Metrics::render(std::size_t queue_depth) const {
  std::ostringstream out;
  const auto line = [&](const char* key, std::uint64_t value) {
    out << key << ": " << value << "\n";
  };
  line("requests_total", requests_total.load());
  line("requests_compress", requests_compress.load());
  line("requests_series", requests_series.load());
  line("requests_decompress", requests_decompress.load());
  line("requests_inspect", requests_inspect.load());
  line("requests_ping", requests_ping.load());
  line("requests_stats", requests_stats.load());
  line("bytes_in", bytes_in.load());
  line("bytes_out", bytes_out.load());
  line("queue_depth", queue_depth);
  line("in_flight_bytes", in_flight_bytes.load());
  line("connections_open", connections_open.load());
  line("connections_total", connections_total.load());
  line("rejected_overloaded", rejected_overloaded.load());
  line("rejected_deadline", rejected_deadline.load());
  line("rejected_shutdown", rejected_shutdown.load());
  line("protocol_errors", protocol_errors.load());
  line("request_errors", request_errors.load());
  line("disconnects_mid_request", disconnects_mid_request.load());
  {
    std::lock_guard lock(mutex_);
    for (const auto& [engine, l] : latency_by_engine_) {
      out << "latency_us{engine=" << engine << "}: count=" << l.count
          << " mean=" << (l.count ? l.total_us / static_cast<double>(l.count)
                                  : 0.0)
          << " max=" << l.max_us << "\n";
    }
  }
  for (int b = 0; b < kPsnrBuckets; ++b) {
    out << "psnr_db_bucket{";
    if (b == kPsnrBuckets - 1)
      out << "ge=" << 20 * b;
    else
      out << "range=" << 20 * b << "-" << 20 * (b + 1);
    out << "}: " << psnr_buckets_[b].load() << "\n";
  }
  out << "psnr_db_below_zero: " << psnr_below_zero_.load() << "\n";
  out << "psnr_db_untracked: " << psnr_untracked_.load() << "\n";
  return out.str();
}

}  // namespace fpsnr::service
