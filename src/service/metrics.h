// Live fpsnrd metrics: lock-free counters for the hot request path, a
// mutex-protected per-engine latency table (touched once per job, far from
// contention), and a fixed-bucket achieved-PSNR histogram. A snapshot is
// rendered as stable `key: value` lines — the payload of a Stats reply and
// the SIGUSR1 stderr dump.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace fpsnr::service {

class Metrics {
 public:
  // -- request-path counters (one increment each, relaxed order) ----------
  std::atomic<std::uint64_t> requests_total{0};
  std::atomic<std::uint64_t> requests_compress{0};
  std::atomic<std::uint64_t> requests_series{0};  ///< CompressSeries frames
  std::atomic<std::uint64_t> requests_decompress{0};
  std::atomic<std::uint64_t> requests_inspect{0};
  std::atomic<std::uint64_t> requests_ping{0};
  std::atomic<std::uint64_t> requests_stats{0};
  std::atomic<std::uint64_t> bytes_in{0};   ///< request payload bytes read
  std::atomic<std::uint64_t> bytes_out{0};  ///< response payload bytes sent
  std::atomic<std::uint64_t> rejected_overloaded{0};
  std::atomic<std::uint64_t> rejected_deadline{0};
  std::atomic<std::uint64_t> rejected_shutdown{0};
  std::atomic<std::uint64_t> protocol_errors{0};  ///< bad magic/frame/size
  std::atomic<std::uint64_t> request_errors{0};   ///< BadRequest/Internal
  std::atomic<std::uint64_t> disconnects_mid_request{0};
  std::atomic<std::uint64_t> connections_total{0};

  // -- gauges sampled at render time --------------------------------------
  std::atomic<std::uint64_t> in_flight_bytes{0};
  std::atomic<std::uint64_t> connections_open{0};

  /// Record one completed job's wall time against its engine.
  void record_latency(const std::string& engine, double micros);

  /// Bucket one archive's achieved PSNR (dB). NaN is counted separately
  /// (modes that do not track it); +inf lands in the top bucket.
  void record_psnr(double psnr_db);

  /// Render every field as `key: value` lines. `queue_depth` is sampled by
  /// the caller (the server owns the queue).
  std::string render(std::size_t queue_depth) const;

 private:
  mutable std::mutex mutex_;  ///< latency table only
  struct Latency {
    std::uint64_t count = 0;
    double total_us = 0.0;
    double max_us = 0.0;
  };
  std::map<std::string, Latency> latency_by_engine_;

  /// 20 dB buckets: [0,20), [20,40), ... [120,+inf); below-zero and NaN
  /// tracked separately.
  static constexpr int kPsnrBuckets = 7;
  std::atomic<std::uint64_t> psnr_buckets_[kPsnrBuckets] = {};
  std::atomic<std::uint64_t> psnr_below_zero_{0};
  std::atomic<std::uint64_t> psnr_untracked_{0};
};

}  // namespace fpsnr::service
