// Wire-level plumbing shared by the fpsnrd server and client: bounded
// binary serialization (little-endian, length-prefixed strings) and framed
// socket I/O. Every read is bounds-checked — a truncated or lying payload
// surfaces as a WireError for the caller to map to a typed protocol error,
// never as an out-of-bounds access.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "fpsnr/service.h"

namespace fpsnr::service::wire {

/// Malformed payload (truncated field, oversized string, trailing junk).
struct WireError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Append-only little-endian serializer.
class Writer {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(v); }
  void u16(std::uint16_t v) { uint(v, 2); }
  void u32(std::uint32_t v) { uint(v, 4); }
  void u64(std::uint64_t v) { uint(v, 8); }
  void f64(double v);
  void str(const std::string& s);
  /// Raw bytes with a u64 length prefix.
  void blob(const void* data, std::size_t size);

  const std::vector<std::uint8_t>& bytes() const { return bytes_; }
  std::vector<std::uint8_t> take() { return std::move(bytes_); }

 private:
  void uint(std::uint64_t v, int width);
  std::vector<std::uint8_t> bytes_;
};

/// Bounds-checked little-endian deserializer over a borrowed buffer.
class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit Reader(const std::vector<std::uint8_t>& bytes)
      : Reader(bytes.data(), bytes.size()) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  double f64();
  std::string str();
  /// A u64-length-prefixed byte run; returns a borrowed view.
  std::pair<const std::uint8_t*, std::size_t> blob();

  std::size_t remaining() const { return size_ - pos_; }
  /// Throws unless the whole payload was consumed — trailing junk means
  /// the two ends disagree about the layout.
  void expect_end() const;

 private:
  std::uint64_t uint(int width);
  const std::uint8_t* need(std::size_t n);
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

/// Parsed frame header.
struct FrameHeader {
  std::uint32_t magic = 0;
  FrameType type = FrameType::Ping;
  std::uint16_t flags = 0;
  std::uint64_t length = 0;
};

/// Read exactly n bytes. Returns false on clean EOF at offset 0; throws
/// WireError on mid-buffer EOF or I/O error.
bool read_exact(int fd, void* buffer, std::size_t n);

/// Write all bytes or throw WireError (EPIPE included).
void write_all(int fd, const void* buffer, std::size_t n);

/// Read one frame header. Returns false on clean EOF before any byte.
/// Validates nothing beyond byte count — callers check magic/type/length.
bool read_frame_header(int fd, FrameHeader* header);

/// Send one complete frame (header + payload).
void send_frame(int fd, FrameType type, const std::vector<std::uint8_t>& payload);

/// Send an Error frame.
void send_error(int fd, ErrorCode code, const std::string& message);

/// Read and discard n payload bytes in bounded chunks (used to keep a
/// connection frame-aligned after rejecting a request without buffering
/// its payload). Throws WireError on EOF/error.
void discard_exact(int fd, std::uint64_t n);

/// Per-socket hardening applied by both ends: suppress SIGPIPE where
/// MSG_NOSIGNAL is unavailable (SO_NOSIGPIPE), and bound mid-frame reads
/// with a receive timeout so one stalled peer cannot wedge a drain.
void set_socket_options(int fd, int recv_timeout_ms = 30000);

}  // namespace fpsnr::service::wire
