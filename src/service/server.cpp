// fpsnrd — the long-lived compression service (fpsnr::service::Server).
//
// Shape of the daemon:
//
//   accept loop (run() caller) ── poll(listen fd, control pipe)
//     ├─ per-connection handler threads: read framed requests, admit them
//     │  (bounded in-flight bytes), enqueue jobs with priority + deadline,
//     │  wait for the result, write the response
//     ├─ one scheduler thread: drains the WorkQueue whenever jobs are
//     │  pending (the ONLY drain site — WorkQueue enforces one drain at a
//     │  time, and the service honours it by construction)
//     └─ control pipe: request_shutdown()/request_stats_dump() write one
//        byte from signal context; the accept loop acts on it
//
// Graceful drain: on shutdown the listen socket closes (no new
// connections), handlers are woken through a broadcast pipe and serve only
// the requests already readable on their sockets before closing, every
// admitted job still runs to completion and is answered, and run()
// returns 0. A client therefore sees exactly one of: a complete response,
// or a clean close with no response — never a partial frame.
#include "fpsnr/service.h"

#if !defined(_WIN32)

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <arpa/inet.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <future>
#include <iomanip>
#include <list>
#include <map>
#include <mutex>
#include <sstream>
#include <thread>
#include <utility>

#include "fpsnr/timeseries.h"
#include "parallel/work_queue.h"
#include "service/metrics.h"
#include "service/wire.h"

namespace fpsnr::service {

namespace {

/// a*b without silent wrap (dims products come off the wire untrusted).
bool checked_mul(std::uint64_t a, std::uint64_t b, std::uint64_t* out) {
  if (a != 0 && b > UINT64_MAX / a) return false;
  *out = a * b;
  return true;
}

/// Outcome of one queued job, handed back to the waiting handler.
struct JobResult {
  bool ok = false;
  ErrorCode code = ErrorCode::Internal;
  std::string message;
  std::vector<std::uint8_t> payload;  ///< Reply payload when ok
};

int close_quietly(int fd) { return fd >= 0 ? ::close(fd) : 0; }

}  // namespace

struct Server::Impl {
  ServerOptions options;
  std::size_t threads = 0;  ///< resolved worker cap

  int listen_fd = -1;
  int control_rd = -1, control_wr = -1;  ///< signal-safe command bytes
  int stop_rd = -1, stop_wr = -1;  ///< write end closed = drain broadcast

  Metrics metrics;
  parallel::WorkQueue queue;
  std::atomic<bool> stopping{false};
  std::atomic<std::uint64_t> served{0};

  // Scheduler: drains `queue` whenever handlers have enqueued work.
  std::mutex scheduler_mutex;
  std::condition_variable scheduler_cv;
  bool scheduler_stop = false;
  std::thread scheduler;

  // Persistent Session pool, keyed by the option triple a request can vary.
  std::mutex sessions_mutex;
  std::map<std::string, Session> sessions;

  // Persistent per-series temporal sessions (CompressSeries). Each entry
  // owns the series' previous reconstruction; its mutex serializes pushes
  // for that one series (frames are ordered) while distinct series still
  // compress concurrently. Entries live until the server exits — the
  // reconstruction IS the chain state and cannot be rebuilt server-side.
  struct SeriesEntry {
    std::string signature;  ///< the non-name spec fields, fixed for life
    std::mutex mutex;
    TimeSeriesSession session;
    SeriesEntry(std::string sig, Target target, TimeSeriesOptions topts)
        : signature(std::move(sig)),
          session(std::move(target), std::move(topts)) {}
  };
  std::mutex series_mutex;
  std::map<std::string, std::unique_ptr<SeriesEntry>> series_sessions;

  struct Connection {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> done{false};
  };
  std::mutex connections_mutex;
  std::list<Connection> connections;

  ~Impl() {
    close_quietly(listen_fd);
    close_quietly(control_rd);
    close_quietly(control_wr);
    close_quietly(stop_rd);
    close_quietly(stop_wr);
    if (!options.endpoint.socket_path.empty())
      ::unlink(options.endpoint.socket_path.c_str());
  }

  // -- setup ---------------------------------------------------------------

  void bind_and_listen() {
    const Endpoint& ep = options.endpoint;
    const bool unix_socket = !ep.socket_path.empty();
    if (unix_socket == (ep.tcp_port != 0))
      throw std::invalid_argument(
          "fpsnrd: set exactly one of socket_path or tcp_port");
    if (unix_socket) {
      sockaddr_un addr{};
      addr.sun_family = AF_UNIX;
      if (ep.socket_path.size() >= sizeof(addr.sun_path))
        throw std::invalid_argument("fpsnrd: socket path too long: " +
                                    ep.socket_path);
      std::strncpy(addr.sun_path, ep.socket_path.c_str(),
                   sizeof(addr.sun_path) - 1);
      listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
      if (listen_fd < 0)
        throw std::runtime_error(std::string("fpsnrd: socket: ") +
                                 std::strerror(errno));
      if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                 sizeof(addr)) < 0) {
        // A stale socket file from a crashed server binds EADDRINUSE even
        // though nothing listens; reclaim it only when a connect probe
        // confirms no live server answers.
        if (errno == EADDRINUSE && !path_is_live(addr)) {
          ::unlink(ep.socket_path.c_str());
          if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                     sizeof(addr)) == 0)
            goto bound;
        }
        const int err = errno;
        throw std::runtime_error("fpsnrd: bind " + ep.socket_path + ": " +
                                 std::strerror(err));
      }
    } else {
      listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
      if (listen_fd < 0)
        throw std::runtime_error(std::string("fpsnrd: socket: ") +
                                 std::strerror(errno));
      const int one = 1;
      ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // loopback only
      addr.sin_port = htons(ep.tcp_port);
      if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                 sizeof(addr)) < 0) {
        const int err = errno;
        throw std::runtime_error("fpsnrd: bind 127.0.0.1:" +
                                 std::to_string(ep.tcp_port) + ": " +
                                 std::strerror(err));
      }
    }
  bound:
    if (::listen(listen_fd, 64) < 0)
      throw std::runtime_error(std::string("fpsnrd: listen: ") +
                               std::strerror(errno));
  }

  static bool path_is_live(const sockaddr_un& addr) {
    const int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (probe < 0) return true;  // cannot prove it is stale — keep it
    const bool live =
        ::connect(probe, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0;
    close_quietly(probe);
    return live;
  }

  void make_pipes() {
    int ctl[2], stp[2];
    if (::pipe(ctl) < 0 || ::pipe(stp) < 0)
      throw std::runtime_error(std::string("fpsnrd: pipe: ") +
                               std::strerror(errno));
    control_rd = ctl[0];
    control_wr = ctl[1];
    stop_rd = stp[0];
    stop_wr = stp[1];
  }

  // -- session pool --------------------------------------------------------

  const Session& session_for(const std::string& engine,
                             const std::string& budget,
                             const std::vector<std::size_t>& tile) {
    std::string key = engine + '|' + budget + '|';
    for (const std::size_t t : tile) key += std::to_string(t) + 'x';
    std::lock_guard lock(sessions_mutex);
    if (const auto it = sessions.find(key); it != sessions.end())
      return it->second;
    SessionOptions so;
    so.threads = threads;
    so.engine = engine;
    so.budget = budget;
    so.tile = TileShape(tile);
    return sessions.emplace(key, Session(std::move(so))).first->second;
  }

  // -- scheduler -----------------------------------------------------------

  void scheduler_loop() {
    for (;;) {
      {
        std::unique_lock lock(scheduler_mutex);
        scheduler_cv.wait(
            lock, [&] { return scheduler_stop || queue.pending() > 0; });
        if (scheduler_stop && queue.pending() == 0) return;
      }
      try {
        queue.drain(threads);
      } catch (const std::exception& e) {
        // Jobs report their own failures through promises; anything that
        // escapes the drain is a service bug worth a trace, not a crash.
        std::fprintf(stderr, "fpsnrd: drain error: %s\n", e.what());
      }
    }
  }

  void enqueue(parallel::WorkQueue::Task task,
               parallel::WorkQueue::TaskOptions task_options) {
    queue.push(std::move(task), std::move(task_options));
    {
      std::lock_guard lock(scheduler_mutex);
    }
    scheduler_cv.notify_one();
  }

  // -- request handling ----------------------------------------------------

  /// Read the scheduling prefix shared by all job requests.
  static parallel::WorkQueue::TaskOptions read_scheduling(
      wire::Reader& r, std::shared_ptr<std::promise<JobResult>> promise,
      Metrics& metrics) {
    parallel::WorkQueue::TaskOptions opts;
    opts.priority = r.u8() != 0;
    const std::uint32_t deadline_ms = r.u32();
    if (deadline_ms > 0) {
      opts.deadline = std::chrono::steady_clock::now() +
                      std::chrono::milliseconds(deadline_ms);
      opts.on_expired = [promise = std::move(promise), &metrics] {
        metrics.rejected_deadline.fetch_add(1, std::memory_order_relaxed);
        promise->set_value({false, ErrorCode::DeadlineExpired,
                            "deadline expired before the job started", {}});
      };
    }
    return opts;
  }

  JobResult run_compress(const std::vector<std::uint8_t>& payload) {
    try {
      wire::Reader r(payload);
      r.u8();   // priority: consumed by the handler
      r.u32();  // deadline_ms
      CompressSpec spec;
      spec.engine = r.str();
      spec.budget = r.str();
      spec.mode = r.str();
      spec.value = r.f64();
      const std::uint8_t tile_rank = r.u8();
      spec.tile.resize(tile_rank);
      for (std::uint8_t t = 0; t < tile_rank; ++t)
        spec.tile[t] = static_cast<std::size_t>(r.u64());
      const std::uint8_t scalar = r.u8();
      const std::uint8_t rank = r.u8();
      std::uint64_t count = 1;
      std::vector<std::size_t> dims(rank);
      for (std::uint8_t d = 0; d < rank; ++d) {
        const std::uint64_t extent = r.u64();
        dims[d] = static_cast<std::size_t>(extent);
        if (!checked_mul(count, extent, &count))
          return {false, ErrorCode::BadRequest, "dims product overflows", {}};
      }
      const auto [values, value_bytes] = r.blob();
      r.expect_end();
      const std::size_t elem = scalar == 1 ? sizeof(double) : sizeof(float);
      if (scalar > 1)
        return {false, ErrorCode::BadRequest, "unknown scalar type", {}};
      if (value_bytes % elem != 0 || value_bytes / elem != count)
        return {false, ErrorCode::BadRequest,
                "dims do not match the value payload size", {}};

      const Target target = make_target(spec.mode, spec.value);
      const Session& session =
          session_for(spec.engine, spec.budget, spec.tile);
      const auto start = std::chrono::steady_clock::now();
      // The payload buffer is only byte-aligned; Source::memory borrows a
      // typed span, so realign the values into a typed vector first.
      CompressReport report;
      if (scalar == 1) {
        std::vector<double> typed(count);
        if (count) std::memcpy(typed.data(), values, value_bytes);
        report = session.compress(Source::memory(std::span<const double>(typed),
                                                 dims),
                                  target, Sink::memory());
      } else {
        std::vector<float> typed(count);
        if (count) std::memcpy(typed.data(), values, value_bytes);
        report = session.compress(Source::memory(std::span<const float>(typed),
                                                 dims),
                                  target, Sink::memory());
      }
      const double micros =
          std::chrono::duration<double, std::micro>(
              std::chrono::steady_clock::now() - start)
              .count();
      metrics.record_latency(spec.engine, micros);
      metrics.record_psnr(report.achieved_psnr_db);

      wire::Writer w;
      w.u64(report.value_count);
      w.u64(report.compressed_bytes);
      w.f64(report.achieved_psnr_db);
      w.f64(report.bit_rate);
      w.u64(report.block_count);
      w.u8(static_cast<std::uint8_t>(report.tile.size()));
      for (const std::size_t t : report.tile) w.u64(t);
      w.blob(report.archive.data(), report.archive.size());
      return {true, ErrorCode::Internal, "", w.take()};
    } catch (const wire::WireError& e) {
      return {false, ErrorCode::BadFrame, e.what(), {}};
    } catch (const std::invalid_argument& e) {
      return {false, ErrorCode::BadRequest, e.what(), {}};
    } catch (const std::exception& e) {
      return {false, ErrorCode::Internal, e.what(), {}};
    }
  }

  JobResult run_compress_series(const std::vector<std::uint8_t>& payload) {
    try {
      wire::Reader r(payload);
      r.u8();   // priority: consumed by the handler
      r.u32();  // deadline_ms
      SeriesSpec spec;
      spec.series = r.str();
      spec.keyframe_interval = r.u32();
      spec.engine = r.str();
      spec.budget = r.str();
      spec.mode = r.str();
      spec.value = r.f64();
      const std::uint8_t tile_rank = r.u8();
      spec.tile.resize(tile_rank);
      for (std::uint8_t t = 0; t < tile_rank; ++t)
        spec.tile[t] = static_cast<std::size_t>(r.u64());
      const std::uint8_t scalar = r.u8();
      const std::uint8_t rank = r.u8();
      std::uint64_t count = 1;
      spec.dims.resize(rank);
      for (std::uint8_t d = 0; d < rank; ++d) {
        const std::uint64_t extent = r.u64();
        spec.dims[d] = static_cast<std::size_t>(extent);
        if (!checked_mul(count, extent, &count))
          return {false, ErrorCode::BadRequest, "dims product overflows", {}};
      }
      const auto [values, value_bytes] = r.blob();
      r.expect_end();
      if (scalar > 1)
        return {false, ErrorCode::BadRequest, "unknown scalar type", {}};
      const std::size_t elem = scalar == 1 ? sizeof(double) : sizeof(float);
      if (value_bytes % elem != 0 || value_bytes / elem != count)
        return {false, ErrorCode::BadRequest,
                "dims do not match the value payload size", {}};
      if (spec.series.empty())
        return {false, ErrorCode::BadRequest, "empty series name", {}};

      // Everything but the snapshot values is fixed for a series' lifetime
      // — a mid-chain re-tile or retarget would desynchronize every
      // downstream decoder, so a mismatch is a request error, never a
      // silent new session.
      std::string signature = spec.engine + '|' + spec.budget + '|' +
                              spec.mode + '|' + std::to_string(spec.value) +
                              '|' + std::to_string(spec.keyframe_interval) +
                              '|' + std::to_string(static_cast<int>(scalar)) +
                              '|';
      for (const std::size_t t : spec.tile)
        signature += std::to_string(t) + 'x';
      signature += '|';
      for (const std::size_t d : spec.dims)
        signature += std::to_string(d) + 'x';

      SeriesEntry* entry = nullptr;
      {
        std::lock_guard lock(series_mutex);
        if (const auto it = series_sessions.find(spec.series);
            it != series_sessions.end()) {
          entry = it->second.get();
        } else {
          TimeSeriesOptions topts;
          topts.session.threads = threads;
          topts.session.engine = spec.engine;
          topts.session.budget = spec.budget;
          topts.session.tile = TileShape(spec.tile);
          topts.series = spec.series;
          topts.keyframe_interval = spec.keyframe_interval;
          // The client ships each frame; the daemon keeps only the
          // reconstruction the chain needs.
          topts.keep_archives = false;
          entry =
              series_sessions
                  .emplace(spec.series,
                           std::make_unique<SeriesEntry>(
                               signature, make_target(spec.mode, spec.value),
                               std::move(topts)))
                  .first->second.get();
        }
      }
      // Serialize pushes for this one series; entry pointers are stable
      // (unique_ptr values, entries never erased).
      std::lock_guard frame_lock(entry->mutex);
      if (entry->signature != signature)
        return {false, ErrorCode::BadRequest,
                "series '" + spec.series +
                    "' is open with different parameters (engine, budget, "
                    "target, tile, keyframe interval, scalar, and dims are "
                    "fixed for a series' lifetime)",
                {}};

      Field snapshot;
      snapshot.dims = spec.dims;
      if (scalar == 1) {
        snapshot.f64.resize(count);
        if (count) std::memcpy(snapshot.f64.data(), values, value_bytes);
      } else {
        snapshot.f32.resize(count);
        if (count) std::memcpy(snapshot.f32.data(), values, value_bytes);
      }
      const auto start = std::chrono::steady_clock::now();
      const SnapshotRecord rec = entry->session.push(snapshot);
      const double micros =
          std::chrono::duration<double, std::micro>(
              std::chrono::steady_clock::now() - start)
              .count();
      metrics.record_latency(spec.engine, micros);
      metrics.record_psnr(rec.report.achieved_psnr_db);

      wire::Writer w;
      w.u64(rec.report.value_count);
      w.u64(rec.report.compressed_bytes);
      w.f64(rec.report.achieved_psnr_db);
      w.f64(rec.report.bit_rate);
      w.u64(rec.report.block_count);
      w.u8(static_cast<std::uint8_t>(rec.report.tile.size()));
      for (const std::size_t t : rec.report.tile) w.u64(t);
      w.blob(rec.report.archive.data(), rec.report.archive.size());
      w.u64(rec.timestep);
      w.u8(rec.keyframe ? 1 : 0);
      w.u64(rec.temporal_blocks);
      return {true, ErrorCode::Internal, "", w.take()};
    } catch (const wire::WireError& e) {
      return {false, ErrorCode::BadFrame, e.what(), {}};
    } catch (const std::invalid_argument& e) {
      return {false, ErrorCode::BadRequest, e.what(), {}};
    } catch (const std::exception& e) {
      return {false, ErrorCode::Internal, e.what(), {}};
    }
  }

  JobResult run_decompress(const std::vector<std::uint8_t>& payload) {
    try {
      wire::Reader r(payload);
      r.u8();
      r.u32();
      const auto [archive, archive_bytes] = r.blob();
      r.expect_end();
      const Session& session = session_for("sz-lorenzo", "uniform", {});
      const Field field = session.decompress(
          Source::memory(std::span<const std::uint8_t>(archive, archive_bytes)));
      wire::Writer w;
      w.u8(field.is_double() ? 1 : 0);
      w.u8(static_cast<std::uint8_t>(field.dims.size()));
      for (const std::size_t d : field.dims) w.u64(d);
      if (field.is_double())
        w.blob(field.f64.data(), field.f64.size() * sizeof(double));
      else
        w.blob(field.f32.data(), field.f32.size() * sizeof(float));
      return {true, ErrorCode::Internal, "", w.take()};
    } catch (const wire::WireError& e) {
      return {false, ErrorCode::BadFrame, e.what(), {}};
    } catch (const std::invalid_argument& e) {
      return {false, ErrorCode::BadRequest, e.what(), {}};
    } catch (const std::exception& e) {
      return {false, ErrorCode::BadRequest, e.what(), {}};
    }
  }

  JobResult run_inspect(const std::vector<std::uint8_t>& payload) {
    try {
      wire::Reader r(payload);
      r.u8();
      r.u32();
      const auto [archive, archive_bytes] = r.blob();
      r.expect_end();
      const Session& session = session_for("sz-lorenzo", "uniform", {});
      const Inspection info = session.inspect(
          Source::memory(std::span<const std::uint8_t>(archive, archive_bytes)));
      std::ostringstream out;
      out << "container: "
          << (info.block_container
                  ? "block-parallel (FPBK v" + std::to_string(info.version) + ")"
                  : "flat stream")
          << "\n"
          << "codec: " << info.codec << "\n"
          << "control: " << info.target << " = " << info.target_value << "\n"
          << "rank: " << info.dims.size() << "\n";
      out << "extents:";
      for (const std::size_t d : info.dims) out << " " << d;
      out << "\n"
          << "blocks: " << info.block_count << " x tile";
      for (std::size_t t = 0; t < info.tile.size(); ++t)
        out << (t ? "x" : " ") << info.tile[t];
      out << "\n"
          << "value_range: " << info.value_range << "\n";
      if (!std::isnan(info.achieved_psnr_db))
        out << "achieved_psnr_db: " << std::fixed << std::setprecision(6)
            << info.achieved_psnr_db << "\n";
      out << "archive_bytes: " << info.archive_bytes << "\n";
      wire::Writer w;
      w.str(out.str());
      return {true, ErrorCode::Internal, "", w.take()};
    } catch (const wire::WireError& e) {
      return {false, ErrorCode::BadFrame, e.what(), {}};
    } catch (const std::exception& e) {
      return {false, ErrorCode::BadRequest, e.what(), {}};
    }
  }

  /// Serve one connection until EOF, a protocol error, or drain.
  void handle_connection(int fd) {
    metrics.connections_total.fetch_add(1, std::memory_order_relaxed);
    metrics.connections_open.fetch_add(1, std::memory_order_relaxed);
    try {
      serve_requests(fd);
    } catch (...) {
      // Peer vanished or the stream broke mid-response; nothing to answer.
    }
    close_quietly(fd);
    metrics.connections_open.fetch_sub(1, std::memory_order_relaxed);
  }

  void serve_requests(int fd) {
    for (;;) {
      // Wait for either a request or the drain broadcast. Once draining,
      // serve only requests that are ALREADY readable — everything the
      // client managed to send before the drain — then close.
      pollfd fds[2] = {{fd, POLLIN, 0}, {stop_rd, POLLIN, 0}};
      if (::poll(fds, 2, -1) < 0) {
        if (errno == EINTR) continue;
        return;
      }
      const bool readable = (fds[0].revents & (POLLIN | POLLHUP)) != 0;
      if (!readable && stopping.load(std::memory_order_acquire)) return;
      if (!readable) continue;

      wire::FrameHeader header;
      try {
        if (!wire::read_frame_header(fd, &header)) return;  // clean EOF
      } catch (const wire::WireError&) {
        metrics.disconnects_mid_request.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      if (header.magic != kFrameMagic) {
        metrics.protocol_errors.fetch_add(1, std::memory_order_relaxed);
        wire::send_error(fd, ErrorCode::BadMagic,
                         "frame does not start with FPSD");
        return;  // stream alignment is lost — close
      }
      if (header.length > options.max_frame_bytes) {
        metrics.protocol_errors.fetch_add(1, std::memory_order_relaxed);
        wire::send_error(fd, ErrorCode::Oversized,
                         "frame length " + std::to_string(header.length) +
                             " exceeds max_frame_bytes " +
                             std::to_string(options.max_frame_bytes));
        return;  // the declared payload will never be read — close
      }
      const bool job = header.type == FrameType::Compress ||
                       header.type == FrameType::CompressSeries ||
                       header.type == FrameType::Decompress ||
                       header.type == FrameType::Inspect;
      if (!job && header.type != FrameType::Ping &&
          header.type != FrameType::Stats &&
          header.type != FrameType::Shutdown) {
        metrics.protocol_errors.fetch_add(1, std::memory_order_relaxed);
        wire::send_error(fd, ErrorCode::BadFrame,
                         "unknown request type " +
                             std::to_string(static_cast<int>(header.type)));
        return;
      }

      // Admission control BEFORE buffering the payload: a rejected request
      // is skipped in bounded chunks so the connection stays frame-aligned
      // and usable.
      if (job) {
        const std::uint64_t in_flight =
            metrics.in_flight_bytes.load(std::memory_order_relaxed);
        if (in_flight + header.length > options.max_in_flight_bytes) {
          metrics.rejected_overloaded.fetch_add(1, std::memory_order_relaxed);
          try {
            wire::discard_exact(fd, header.length);
          } catch (const wire::WireError&) {
            metrics.disconnects_mid_request.fetch_add(
                1, std::memory_order_relaxed);
            return;
          }
          wire::send_error(fd, ErrorCode::Overloaded,
                           "in-flight byte budget exhausted (" +
                               std::to_string(in_flight) + " of " +
                               std::to_string(options.max_in_flight_bytes) +
                               " in use)");
          continue;
        }
      }

      std::vector<std::uint8_t> payload(
          static_cast<std::size_t>(header.length));
      try {
        if (header.length > 0 &&
            !wire::read_exact(fd, payload.data(), payload.size()))
          throw wire::WireError("eof");
      } catch (const wire::WireError&) {
        metrics.disconnects_mid_request.fetch_add(1, std::memory_order_relaxed);
        return;  // peer died mid-request: nothing to answer
      }
      metrics.bytes_in.fetch_add(header.length, std::memory_order_relaxed);
      metrics.requests_total.fetch_add(1, std::memory_order_relaxed);

      std::vector<std::uint8_t> reply;
      bool close_after = false;
      switch (header.type) {
        case FrameType::Ping:
          metrics.requests_ping.fetch_add(1, std::memory_order_relaxed);
          break;
        case FrameType::Stats: {
          metrics.requests_stats.fetch_add(1, std::memory_order_relaxed);
          wire::Writer w;
          w.str(metrics.render(queue.pending()));
          reply = w.take();
          break;
        }
        case FrameType::Shutdown:
          request_shutdown_impl();
          close_after = true;
          break;
        default: {  // Compress / CompressSeries / Decompress / Inspect
          if (header.type == FrameType::Compress)
            metrics.requests_compress.fetch_add(1, std::memory_order_relaxed);
          else if (header.type == FrameType::CompressSeries)
            metrics.requests_series.fetch_add(1, std::memory_order_relaxed);
          else if (header.type == FrameType::Decompress)
            metrics.requests_decompress.fetch_add(1, std::memory_order_relaxed);
          else
            metrics.requests_inspect.fetch_add(1, std::memory_order_relaxed);

          const JobResult result = dispatch_job(header.type, std::move(payload));
          if (!result.ok) {
            metrics.request_errors.fetch_add(
                result.code == ErrorCode::DeadlineExpired ? 0 : 1,
                std::memory_order_relaxed);
            wire::send_error(fd, result.code, result.message);
            continue;
          }
          reply = std::move(result.payload);
          break;
        }
      }
      metrics.bytes_out.fetch_add(reply.size(), std::memory_order_relaxed);
      wire::send_frame(fd, FrameType::Reply, reply);
      served.fetch_add(1, std::memory_order_relaxed);
      if (close_after) return;
    }
  }

  /// Parse the scheduling prefix, admit the payload bytes, queue the job,
  /// and wait for its result.
  JobResult dispatch_job(FrameType type, std::vector<std::uint8_t> payload) {
    const auto promise = std::make_shared<std::promise<JobResult>>();
    auto future = promise->get_future();

    parallel::WorkQueue::TaskOptions task_options;
    try {
      wire::Reader r(payload);
      task_options = read_scheduling(r, promise, metrics);
    } catch (const wire::WireError& e) {
      return {false, ErrorCode::BadFrame, e.what(), {}};
    }

    const std::uint64_t admitted = payload.size();
    metrics.in_flight_bytes.fetch_add(admitted, std::memory_order_relaxed);
    const auto shared_payload =
        std::make_shared<std::vector<std::uint8_t>>(std::move(payload));
    enqueue(
        [this, type, shared_payload, promise] {
          JobResult result;
          switch (type) {
            case FrameType::Compress:
              result = run_compress(*shared_payload);
              break;
            case FrameType::CompressSeries:
              result = run_compress_series(*shared_payload);
              break;
            case FrameType::Decompress:
              result = run_decompress(*shared_payload);
              break;
            default:
              result = run_inspect(*shared_payload);
              break;
          }
          promise->set_value(std::move(result));
        },
        std::move(task_options));
    JobResult result = future.get();
    metrics.in_flight_bytes.fetch_sub(admitted, std::memory_order_relaxed);
    return result;
  }

  // -- accept loop / lifecycle ---------------------------------------------

  void request_shutdown_impl() {
    const char byte = 'q';
    // Async-signal-safe: a single write syscall, no locks, no allocation.
    (void)!::write(control_wr, &byte, 1);
  }

  void reap_connections(bool join_all) {
    std::lock_guard lock(connections_mutex);
    for (auto it = connections.begin(); it != connections.end();) {
      if (join_all || it->done.load(std::memory_order_acquire)) {
        if (it->thread.joinable()) it->thread.join();
        it = connections.erase(it);
      } else {
        ++it;
      }
    }
  }

  int run() {
    scheduler = std::thread([this] { scheduler_loop(); });
    for (;;) {
      pollfd fds[2] = {{listen_fd, POLLIN, 0}, {control_rd, POLLIN, 0}};
      if (::poll(fds, 2, -1) < 0) {
        if (errno == EINTR) continue;
        break;
      }
      if (fds[1].revents & POLLIN) {
        char byte = 0;
        if (::read(control_rd, &byte, 1) == 1 && byte == 'u') {
          const std::string text = metrics.render(queue.pending());
          std::fprintf(stderr, "fpsnrd: stats\n%s", text.c_str());
        } else {
          break;  // 'q' (or control pipe failure): begin graceful drain
        }
      }
      if (fds[0].revents & POLLIN) {
        const int conn = ::accept(listen_fd, nullptr, nullptr);
        if (conn < 0) continue;
        // Bound mid-frame reads so one stalled peer cannot wedge the drain;
        // between frames the handler blocks in poll(), not read().
        wire::set_socket_options(conn);
        reap_connections(/*join_all=*/false);
        std::lock_guard lock(connections_mutex);
        Connection& c = connections.emplace_back();
        c.fd = conn;
        c.thread = std::thread([this, conn, &c] {
          handle_connection(conn);
          c.done.store(true, std::memory_order_release);
        });
      }
    }

    // Graceful drain: stop accepting, broadcast the stop pipe (handlers
    // wake, serve what is already readable, close), answer everything
    // admitted, then retire the scheduler.
    stopping.store(true, std::memory_order_release);
    close_quietly(std::exchange(listen_fd, -1));
    close_quietly(std::exchange(stop_wr, -1));  // POLLHUP wakes every handler
    reap_connections(/*join_all=*/true);
    {
      std::lock_guard lock(scheduler_mutex);
      scheduler_stop = true;
    }
    scheduler_cv.notify_one();
    scheduler.join();
    if (!options.endpoint.socket_path.empty())
      ::unlink(options.endpoint.socket_path.c_str());
    std::fprintf(stderr, "fpsnrd: drained, %llu request(s) served, exit 0\n",
                 static_cast<unsigned long long>(
                     served.load(std::memory_order_relaxed)));
    return 0;
  }
};

Server::Server(ServerOptions options) : impl_(std::make_unique<Impl>()) {
  impl_->options = std::move(options);
  impl_->threads = impl_->options.threads
                       ? impl_->options.threads
                       : std::max(1u, std::thread::hardware_concurrency());
  impl_->make_pipes();
  impl_->bind_and_listen();
}

Server::~Server() = default;

int Server::run() { return impl_->run(); }

void Server::request_shutdown() { impl_->request_shutdown_impl(); }

void Server::request_stats_dump() {
  const char byte = 'u';
  (void)!::write(impl_->control_wr, &byte, 1);
}

std::string Server::stats() const {
  return impl_->metrics.render(impl_->queue.pending());
}

}  // namespace fpsnr::service

#else  // _WIN32

namespace fpsnr::service {

struct Server::Impl {};

Server::Server(ServerOptions) {
  throw std::runtime_error("fpsnrd requires POSIX sockets");
}
Server::~Server() = default;
int Server::run() { return 1; }
void Server::request_shutdown() {}
void Server::request_stats_dump() {}
std::string Server::stats() const { return {}; }

}  // namespace fpsnr::service

#endif
