#include "service/wire.h"

#if !defined(_WIN32)

#include <cerrno>
#include <cstring>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#endif

namespace fpsnr::service::wire {

void Writer::uint(std::uint64_t v, int width) {
  for (int i = 0; i < width; ++i)
    bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void Writer::f64(double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  uint(bits, 8);
}

void Writer::str(const std::string& s) {
  u32(static_cast<std::uint32_t>(s.size()));
  bytes_.insert(bytes_.end(), s.begin(), s.end());
}

void Writer::blob(const void* data, std::size_t size) {
  u64(size);
  const auto* p = static_cast<const std::uint8_t*>(data);
  bytes_.insert(bytes_.end(), p, p + size);
}

const std::uint8_t* Reader::need(std::size_t n) {
  if (n > size_ - pos_)
    throw WireError("truncated payload: wanted " + std::to_string(n) +
                    " byte(s), have " + std::to_string(size_ - pos_));
  const std::uint8_t* p = data_ + pos_;
  pos_ += n;
  return p;
}

std::uint64_t Reader::uint(int width) {
  const std::uint8_t* p = need(static_cast<std::size_t>(width));
  std::uint64_t v = 0;
  for (int i = 0; i < width; ++i)
    v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

std::uint8_t Reader::u8() { return static_cast<std::uint8_t>(uint(1)); }
std::uint16_t Reader::u16() { return static_cast<std::uint16_t>(uint(2)); }
std::uint32_t Reader::u32() { return static_cast<std::uint32_t>(uint(4)); }
std::uint64_t Reader::u64() { return uint(8); }

double Reader::f64() {
  const std::uint64_t bits = uint(8);
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string Reader::str() {
  const std::uint32_t n = u32();
  const std::uint8_t* p = need(n);
  return std::string(reinterpret_cast<const char*>(p), n);
}

std::pair<const std::uint8_t*, std::size_t> Reader::blob() {
  const std::uint64_t n = u64();
  if (n > size_ - pos_)
    throw WireError("truncated payload: blob claims " + std::to_string(n) +
                    " byte(s), have " + std::to_string(size_ - pos_));
  const std::uint8_t* p = need(static_cast<std::size_t>(n));
  return {p, static_cast<std::size_t>(n)};
}

void Reader::expect_end() const {
  if (pos_ != size_)
    throw WireError("trailing payload bytes: " + std::to_string(size_ - pos_) +
                    " after the last field");
}

std::string_view error_code_name_impl(ErrorCode code) {
  switch (code) {
    case ErrorCode::BadMagic: return "bad-magic";
    case ErrorCode::BadFrame: return "bad-frame";
    case ErrorCode::Oversized: return "oversized";
    case ErrorCode::BadRequest: return "bad-request";
    case ErrorCode::Overloaded: return "overloaded";
    case ErrorCode::DeadlineExpired: return "deadline-expired";
    case ErrorCode::ShuttingDown: return "shutting-down";
    case ErrorCode::Internal: return "internal";
  }
  return "unknown";
}

#if !defined(_WIN32)

bool read_exact(int fd, void* buffer, std::size_t n) {
  auto* p = static_cast<std::uint8_t*>(buffer);
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, p + got, n - got);
    if (r == 0) {
      if (got == 0) return false;  // clean EOF between frames
      throw WireError("connection closed mid-frame (" + std::to_string(got) +
                      "/" + std::to_string(n) + " byte(s))");
    }
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK)
        throw WireError("read timed out mid-frame");
      throw WireError(std::string("read failed: ") + std::strerror(errno));
    }
    got += static_cast<std::size_t>(r);
  }
  return true;
}

void write_all(int fd, const void* buffer, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(buffer);
  std::size_t sent = 0;
  while (sent < n) {
    // MSG_NOSIGNAL: a vanished peer must surface as EPIPE (a WireError the
    // handler catches), never as a process-killing SIGPIPE. Platforms
    // without it (macOS) rely on SO_NOSIGPIPE from set_socket_options.
#if defined(MSG_NOSIGNAL)
    const ssize_t r = ::send(fd, p + sent, n - sent, MSG_NOSIGNAL);
#else
    const ssize_t r = ::write(fd, p + sent, n - sent);
#endif
    if (r < 0) {
      if (errno == EINTR) continue;
      throw WireError(std::string("write failed: ") + std::strerror(errno));
    }
    sent += static_cast<std::size_t>(r);
  }
}

void set_socket_options(int fd, int recv_timeout_ms) {
#if defined(SO_NOSIGPIPE)
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_NOSIGPIPE, &one, sizeof(one));
#endif
  if (recv_timeout_ms > 0) {
    timeval tv{};
    tv.tv_sec = recv_timeout_ms / 1000;
    tv.tv_usec = (recv_timeout_ms % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
}

bool read_frame_header(int fd, FrameHeader* header) {
  std::uint8_t raw[kFrameHeaderBytes];
  if (!read_exact(fd, raw, sizeof(raw))) return false;
  Reader r(raw, sizeof(raw));
  header->magic = r.u32();
  header->type = static_cast<FrameType>(r.u16());
  header->flags = r.u16();
  header->length = r.u64();
  return true;
}

void send_frame(int fd, FrameType type,
                const std::vector<std::uint8_t>& payload) {
  Writer head;
  head.u32(kFrameMagic);
  head.u16(static_cast<std::uint16_t>(type));
  head.u16(0);
  head.u64(payload.size());
  write_all(fd, head.bytes().data(), head.bytes().size());
  if (!payload.empty()) write_all(fd, payload.data(), payload.size());
}

void send_error(int fd, ErrorCode code, const std::string& message) {
  Writer w;
  w.u16(static_cast<std::uint16_t>(code));
  w.str(message);
  send_frame(fd, FrameType::Error, w.bytes());
}

void discard_exact(int fd, std::uint64_t n) {
  std::uint8_t sink[4096];
  while (n > 0) {
    const std::size_t chunk =
        static_cast<std::size_t>(n < sizeof(sink) ? n : sizeof(sink));
    if (!read_exact(fd, sink, chunk))
      throw WireError("connection closed while skipping a rejected payload");
    n -= chunk;
  }
}

#endif  // !defined(_WIN32)

}  // namespace fpsnr::service::wire

namespace fpsnr::service {

std::string_view error_code_name(ErrorCode code) {
  return wire::error_code_name_impl(code);
}

}  // namespace fpsnr::service
