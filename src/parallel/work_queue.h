// Global MPMC work queue — the batch engine's task substrate.
//
// parallel_for_shared (shared_pool.h) parallelizes ONE indexed loop; a
// whole-dataset batch is many loops of very different lengths (CESM-ATM:
// 79 fields from tiny 2-D slices to huge 3-D volumes). Running them one
// loop at a time serializes the pool behind each field's stragglers: a
// 4-block field can keep at most 4 of 8 cores busy, and every field ends
// with a barrier. WorkQueue instead holds the blocks of *all* fields as
// independent tasks in one multi-producer/multi-consumer queue, so workers
// always have somewhere to go until the entire dataset is drained.
//
// Tasks are coarse (one pipeline block: quantize -> Huffman -> lossless,
// typically >= tens of microseconds), so a single lock-protected deque is
// plenty — the lock is touched twice per task, far from contention, while
// staying trivially work-stealing-friendly: any executor pops from the same
// front, so an idle worker "steals" whatever is next regardless of which
// field produced it.
//
// Nesting safety mirrors parallel_for_shared: drain() always executes tasks
// on the calling thread too, and shared-pool helpers are best-effort, so a
// drain issued from inside a pool worker can never deadlock. Tasks may push
// further tasks (e.g. a field's finalize step) — drain() only returns when
// the queue is empty AND no task is still running.
//
// Locality-aware placement: producers may tag tasks with a locality key
// (TaskOptions::locality) naming the data neighborhood the task touches —
// e.g. adjacent pipeline tiles of one field, which share cache lines along
// their faces. During a multi-worker drain, an executor popping from the
// FIFO lane first scans a short window at the front for a tagged task
// whose key it was the last to run, and takes that one instead of the
// front — warm-cache work stays on the worker that warmed it. Strictly
// best-effort and bounded: untagged tasks keep exact FIFO order among
// themselves, the priority lane and deadline semantics are untouched, and
// single-worker drains pop pure FIFO (so a drain(1) replay is exactly the
// queue order). Placement only moves WHERE a task runs, never what it
// computes — archives stay byte-identical regardless.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>

namespace fpsnr::parallel {

class WorkQueue {
 public:
  using Task = std::function<void()>;

  /// Scheduling attributes for push(task, options). The defaults are
  /// exactly the plain push(task): FIFO lane, no deadline — the batch
  /// engine's byte-deterministic drain order is untouched unless a caller
  /// explicitly asks for the priority lane.
  struct TaskOptions {
    /// Priority-lane tasks run before every FIFO task still queued; within
    /// the lane they stay FIFO among themselves.
    bool priority = false;
    /// A task whose deadline has passed when an executor pops it is NOT
    /// run; on_expired runs in its place (same exception policy). max() =
    /// no deadline. Expiry is checked at pop time only — a task that
    /// started before its deadline always runs to completion.
    std::chrono::steady_clock::time_point deadline =
        std::chrono::steady_clock::time_point::max();
    Task on_expired;
    /// Optional data-neighborhood key (0 = none). Tasks sharing a key
    /// prefer the executor that last ran one of them (see the header
    /// comment); purely a placement hint with no effect on results.
    std::uint64_t locality = 0;
  };

  WorkQueue();
  ~WorkQueue();

  WorkQueue(const WorkQueue&) = delete;
  WorkQueue& operator=(const WorkQueue&) = delete;

  /// Enqueue a task (FIFO). Safe from any thread, including from inside a
  /// task that is currently draining.
  void push(Task task);

  /// Enqueue with explicit scheduling attributes (lane + deadline). The
  /// service front end uses this for per-request priority and
  /// deadline-expiry rejection; push(task) is the two-lane degenerate case.
  void push(Task task, TaskOptions options);

  /// Tasks enqueued but not yet started, across both lanes (snapshot; racy
  /// by nature).
  std::size_t pending() const;

  /// Run tasks until the queue is empty and every started task has
  /// returned. The calling thread always participates; up to
  /// max_workers - 1 shared-pool helpers join best-effort (max_workers
  /// <= 1 drains everything inline on the caller). Rethrows the first
  /// task exception after the drain completes — remaining tasks still
  /// run, so producers with per-task cleanup always see every task
  /// either executed or still queued, never silently dropped.
  ///
  /// One drain at a time: pushes are MPMC-safe concurrently with a
  /// running drain, but overlapping drain() calls on the same queue are
  /// not supported (the error slot and helper re-offer hook are
  /// per-queue, so two concurrent drains would steal each other's
  /// exceptions and helper offers). This is ENFORCED: an overlapping
  /// drain — from another thread, or from inside a task of the running
  /// drain — throws std::logic_error immediately instead of silently
  /// corrupting task ownership. Drain sequentially, or use one queue per
  /// drain site.
  void drain(std::size_t max_workers);

 private:
  struct State;
  /// Heap-shared with helper tasks: a helper may still sit in the pool
  /// queue after drain() returns (it finds the queue empty and exits), so
  /// the state must be able to outlive the WorkQueue itself.
  std::shared_ptr<State> state_;
};

}  // namespace fpsnr::parallel
