#include "parallel/shared_pool.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <exception>
#include <memory>
#include <mutex>

namespace fpsnr::parallel {

ThreadPool& shared_pool() {
  static ThreadPool pool;  // hardware_concurrency workers
  return pool;
}

namespace {

/// Heap-held loop state shared with helper tasks. Helpers may still be
/// sitting in the pool queue when the caller returns (the caller waits for
/// every *index* to finish, never for the helper tasks themselves), so the
/// state must outlive the call frame; late helpers find the cursor
/// exhausted and return without touching the caller's function.
struct LoopState {
  std::atomic<std::size_t> next{0};
  std::size_t count = 0;
  const std::function<void(std::size_t)>* fn = nullptr;  ///< valid while done < count
  std::mutex mutex;
  std::condition_variable all_done;
  std::size_t done = 0;
  std::exception_ptr first_error;

  void drain() {
    std::size_t finished = 0;
    std::exception_ptr error;
    for (std::size_t i = next.fetch_add(1); i < count; i = next.fetch_add(1)) {
      // done < count is guaranteed here, so *fn (a reference into the
      // still-blocked caller's frame) is safe to use.
      try {
        (*fn)(i);
      } catch (...) {
        if (!error) error = std::current_exception();
      }
      ++finished;
    }
    if (finished == 0 && !error) return;
    std::lock_guard lock(mutex);
    if (error && !first_error) first_error = error;
    done += finished;
    if (done == count) all_done.notify_all();
  }
};

}  // namespace

void parallel_for_shared(std::size_t count, std::size_t max_workers,
                         const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  const std::size_t workers = std::min(max_workers, count);
  if (workers <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  auto state = std::make_shared<LoopState>();
  state->count = count;
  state->fn = &fn;

  // Helpers are *best effort*: each drains the shared cursor when (if) a
  // pool worker picks it up. Nobody ever blocks on a helper task running,
  // so nested loops cannot deadlock — every wait below is on an index that
  // some executor is actively running, and the caller's own drain() makes
  // progress even if the pool never schedules a single helper.
  for (std::size_t w = 0; w + 1 < workers; ++w) {
    try {
      (void)shared_pool().submit([state] { state->drain(); });
    } catch (...) {
      break;  // pool shutting down: the caller still completes the loop
    }
  }
  state->drain();

  std::unique_lock lock(state->mutex);
  state->all_done.wait(lock, [&] { return state->done == count; });
  if (state->first_error) std::rethrow_exception(state->first_error);
}

}  // namespace fpsnr::parallel
