// Minimal work-stealing-free thread pool + blocking parallel_for.
//
// Used by core::batch to compress the many fields of a dataset concurrently
// (CESM-ATM has 79 fields). Codecs themselves stay single-threaded per
// field so compression output is byte-deterministic.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace fpsnr::parallel {

class ThreadPool {
 public:
  /// Spawns `threads` workers (defaults to hardware concurrency, min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task; the future resolves with its result (or exception).
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard lock(mutex_);
      if (stopping_) throw std::runtime_error("ThreadPool: submit after shutdown");
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  std::size_t thread_count() const { return workers_.size(); }

 private:
  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;

  void worker_loop();
};

/// Run fn(i) for i in [0, count) across the pool; rethrows the first task
/// exception after all tasks finish.
void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& fn);

}  // namespace fpsnr::parallel
