#include "parallel/work_queue.h"

#include <atomic>
#include <condition_variable>
#include <deque>
#include <exception>
#include <mutex>
#include <utility>

#include "parallel/shared_pool.h"

namespace fpsnr::parallel {

struct WorkQueue::State {
  std::mutex mutex;
  std::condition_variable idle;  ///< queue empty + nothing running, or new work
  std::deque<Task> tasks;
  std::size_t running = 0;
  std::exception_ptr first_error;
  /// Set for the duration of a multi-worker drain: push() invokes it
  /// (outside the lock) to offer the pool ONE more best-effort helper for
  /// a task pushed mid-drain. Retired helpers never rejoin on their own,
  /// so without this, a burst of follow-up tasks (e.g. the batch engine's
  /// per-field verify decodes) pushed near the tail would serialize on
  /// whichever executor pushed them.
  std::function<void()> offer_helper;

  /// Pop-and-run until the queue is empty — or, for helpers, until the
  /// drain they belong to has ended. A helper may sit unscheduled in the
  /// shared pool long past its drain() and wake at any later moment
  /// (between drains, or inside a later drain(1) that promises
  /// strictly-inline execution), so each drain hands its helpers a
  /// per-drain `active` flag that is cleared the moment that drain
  /// returns: a stale helper retires without touching tasks it was never
  /// budgeted for. The drain() caller passes nullptr (it is always
  /// entitled to run) and loops back in whenever an in-flight task
  /// repopulates the queue.
  void run_tasks(const std::atomic<bool>* active) {
    std::unique_lock lock(mutex);
    while (!tasks.empty() &&
           (active == nullptr || active->load(std::memory_order_acquire))) {
      Task task = std::move(tasks.front());
      tasks.pop_front();
      ++running;
      lock.unlock();
      try {
        task();
      } catch (...) {
        lock.lock();
        if (!first_error) first_error = std::current_exception();
        lock.unlock();
      }
      lock.lock();
      --running;
    }
    if (running == 0) idle.notify_all();
  }
};

WorkQueue::WorkQueue() : state_(std::make_shared<State>()) {}

WorkQueue::~WorkQueue() = default;

void WorkQueue::push(Task task) {
  std::function<void()> offer;
  {
    std::lock_guard lock(state_->mutex);
    state_->tasks.push_back(std::move(task));
    offer = state_->offer_helper;  // copy: cleared asynchronously by drain
  }
  // Wake the drain() caller if it is parked: an in-flight task may have
  // produced follow-up work after the queue looked empty.
  state_->idle.notify_all();
  if (offer) offer();
}

std::size_t WorkQueue::pending() const {
  std::lock_guard lock(state_->mutex);
  return state_->tasks.size();
}

void WorkQueue::drain(std::size_t max_workers) {
  const std::shared_ptr<State> state = state_;
  // Shared with this drain's helpers (which may outlive both the drain
  // and the WorkQueue); cleared on every exit path so stale helpers can
  // never execute tasks pushed after this drain returned.
  const auto active = std::make_shared<std::atomic<bool>>(true);
  // Helpers are best effort, exactly as in parallel_for_shared: if the
  // pool never schedules one, the caller's own loop below still drains
  // everything, so nesting inside a pool worker cannot deadlock.
  const auto spawn_helper = [state, active] {
    try {
      (void)shared_pool().submit(
          [state, active] { state->run_tasks(active.get()); });
    } catch (...) {
      // pool shutting down: the caller completes the drain alone
    }
  };
  if (max_workers > 1) {
    for (std::size_t w = 1; w < max_workers; ++w) spawn_helper();
    // Tasks pushed while the drain is running re-offer the pool one
    // helper each (see State::offer_helper) — retired helpers never
    // rejoin by themselves.
    std::lock_guard lock(state->mutex);
    state->offer_helper = spawn_helper;
  }

  state->run_tasks(nullptr);
  std::unique_lock lock(state->mutex);
  for (;;) {
    if (!state->tasks.empty()) {
      // A task pushed follow-up work; its helper offer may lose the pool
      // lottery, so the caller picks the work up itself.
      lock.unlock();
      state->run_tasks(nullptr);
      lock.lock();
      continue;
    }
    if (state->running == 0) break;
    state->idle.wait(lock, [&] {
      return !state->tasks.empty() || state->running == 0;
    });
  }
  state->offer_helper = nullptr;
  // Retire this drain's helpers BEFORE dropping the mutex: they re-check
  // `active` under the same lock, so no helper can pop a task pushed
  // after this drain's completion was decided.
  active->store(false, std::memory_order_release);
  std::exception_ptr error = std::exchange(state->first_error, nullptr);
  lock.unlock();
  if (error) std::rethrow_exception(error);
}

}  // namespace fpsnr::parallel
