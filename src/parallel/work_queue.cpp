#include "parallel/work_queue.h"

#include <atomic>
#include <condition_variable>
#include <deque>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "parallel/shared_pool.h"

namespace fpsnr::parallel {

struct WorkQueue::State {
  /// One queued unit of work: the task plus its scheduling attributes.
  /// Plain push() leaves the defaults (no deadline), so the FIFO lane's
  /// byte-deterministic pop order is exactly the pre-options behaviour.
  struct Entry {
    Task task;
    Task on_expired;
    std::chrono::steady_clock::time_point deadline =
        std::chrono::steady_clock::time_point::max();
    std::uint64_t locality = 0;  ///< 0 = no placement preference
  };

  /// How far into the FIFO lane an executor looks for a task whose
  /// locality key it owns. Small and fixed: the scan is O(window) under
  /// the queue lock, and a task can be bypassed at most by tagged tasks
  /// inside this window — never starved behind an unbounded stream.
  static constexpr std::size_t kLocalityWindow = 16;

  std::mutex mutex;
  std::condition_variable idle;  ///< queue empty + nothing running, or new work
  std::deque<Entry> priority_tasks;  ///< drained before the FIFO lane
  std::deque<Entry> tasks;
  std::size_t running = 0;
  std::exception_ptr first_error;
  /// Guards the one-drain-at-a-time contract: set for the duration of a
  /// drain(), so an overlapping drain (another thread, or a task of the
  /// running drain draining its own queue) fails loudly instead of the two
  /// drains stealing each other's error slot and helper offers.
  std::atomic<bool> draining{false};
  /// Locality placement state, all under `mutex`. Enabled only for the
  /// duration of a multi-worker drain (a single executor has nothing to
  /// place); the affinity map is cleared when the drain ends, so keys
  /// never alias across drains or leak memory between batches.
  bool locality_enabled = false;
  std::size_t executor_serial = 0;  ///< hands each run_tasks pass an id
  std::unordered_map<std::uint64_t, std::size_t> last_executor;
  /// Set for the duration of a multi-worker drain: push() invokes it
  /// (outside the lock) to offer the pool ONE more best-effort helper for
  /// a task pushed mid-drain. Retired helpers never rejoin on their own,
  /// so without this, a burst of follow-up tasks (e.g. the batch engine's
  /// per-field verify decodes) pushed near the tail would serialize on
  /// whichever executor pushed them.
  std::function<void()> offer_helper;

  /// Pop-and-run until the queue is empty — or, for helpers, until the
  /// drain they belong to has ended. A helper may sit unscheduled in the
  /// shared pool long past its drain() and wake at any later moment
  /// (between drains, or inside a later drain(1) that promises
  /// strictly-inline execution), so each drain hands its helpers a
  /// per-drain `active` flag that is cleared the moment that drain
  /// returns: a stale helper retires without touching tasks it was never
  /// budgeted for. The drain() caller passes nullptr (it is always
  /// entitled to run) and loops back in whenever an in-flight task
  /// repopulates the queue.
  void run_tasks(const std::atomic<bool>* active) {
    std::unique_lock lock(mutex);
    const std::size_t me = ++executor_serial;
    while ((!priority_tasks.empty() || !tasks.empty()) &&
           (active == nullptr || active->load(std::memory_order_acquire))) {
      auto& lane = priority_tasks.empty() ? tasks : priority_tasks;
      // Locality pass (FIFO lane only; the priority lane stays strict):
      // prefer a tagged task near the front whose neighborhood this
      // executor touched last. Untagged tasks are never reordered
      // relative to each other — only tagged tasks may jump the line.
      std::size_t pick = 0;
      if (locality_enabled && priority_tasks.empty()) {
        const std::size_t window = std::min(lane.size(), kLocalityWindow);
        for (std::size_t i = 0; i < window; ++i) {
          const std::uint64_t key = lane[i].locality;
          if (key == 0) continue;
          const auto it = last_executor.find(key);
          if (it != last_executor.end() && it->second == me) {
            pick = i;
            break;
          }
        }
      }
      Entry entry = std::move(lane[pick]);
      lane.erase(lane.begin() + static_cast<std::ptrdiff_t>(pick));
      if (locality_enabled && entry.locality != 0)
        last_executor[entry.locality] = me;
      ++running;
      lock.unlock();
      // Expiry is decided once, at pop time: a task that begins before its
      // deadline runs to completion, an expired one is replaced by its
      // on_expired hook (which reports the rejection to whoever waits on
      // the task's result). Both sides share the drain's exception policy.
      Task& chosen =
          entry.deadline < std::chrono::steady_clock::now() ? entry.on_expired
                                                            : entry.task;
      try {
        if (chosen) chosen();
      } catch (...) {
        lock.lock();
        if (!first_error) first_error = std::current_exception();
        lock.unlock();
      }
      lock.lock();
      --running;
    }
    if (running == 0) idle.notify_all();
  }
};

WorkQueue::WorkQueue() : state_(std::make_shared<State>()) {}

WorkQueue::~WorkQueue() = default;

void WorkQueue::push(Task task) { push(std::move(task), TaskOptions{}); }

void WorkQueue::push(Task task, TaskOptions options) {
  std::function<void()> offer;
  {
    std::lock_guard lock(state_->mutex);
    auto& lane = options.priority ? state_->priority_tasks : state_->tasks;
    lane.push_back({std::move(task), std::move(options.on_expired),
                    options.deadline, options.locality});
    offer = state_->offer_helper;  // copy: cleared asynchronously by drain
  }
  // Wake the drain() caller if it is parked: an in-flight task may have
  // produced follow-up work after the queue looked empty.
  state_->idle.notify_all();
  if (offer) offer();
}

std::size_t WorkQueue::pending() const {
  std::lock_guard lock(state_->mutex);
  return state_->tasks.size() + state_->priority_tasks.size();
}

void WorkQueue::drain(std::size_t max_workers) {
  const std::shared_ptr<State> state = state_;
  if (state->draining.exchange(true, std::memory_order_acq_rel))
    throw std::logic_error(
        "WorkQueue::drain: a drain is already running on this queue "
        "(one drain at a time — overlapping drains would steal each "
        "other's tasks, exceptions, and helper offers)");
  struct DrainGuard {
    std::atomic<bool>& flag;
    ~DrainGuard() { flag.store(false, std::memory_order_release); }
  } drain_guard{state->draining};
  // Shared with this drain's helpers (which may outlive both the drain
  // and the WorkQueue); cleared on every exit path so stale helpers can
  // never execute tasks pushed after this drain returned.
  const auto active = std::make_shared<std::atomic<bool>>(true);
  // Helpers are best effort, exactly as in parallel_for_shared: if the
  // pool never schedules one, the caller's own loop below still drains
  // everything, so nesting inside a pool worker cannot deadlock.
  const auto spawn_helper = [state, active] {
    try {
      (void)shared_pool().submit(
          [state, active] { state->run_tasks(active.get()); });
    } catch (...) {
      // pool shutting down: the caller completes the drain alone
    }
  };
  if (max_workers > 1) {
    for (std::size_t w = 1; w < max_workers; ++w) spawn_helper();
    // Tasks pushed while the drain is running re-offer the pool one
    // helper each (see State::offer_helper) — retired helpers never
    // rejoin by themselves.
    std::lock_guard lock(state->mutex);
    state->offer_helper = spawn_helper;
    // With more than one executor, honor locality tags; a drain(1) pops
    // pure FIFO so replays match the queue order exactly.
    state->locality_enabled = true;
  }

  state->run_tasks(nullptr);
  std::unique_lock lock(state->mutex);
  for (;;) {
    if (!state->tasks.empty() || !state->priority_tasks.empty()) {
      // A task pushed follow-up work; its helper offer may lose the pool
      // lottery, so the caller picks the work up itself.
      lock.unlock();
      state->run_tasks(nullptr);
      lock.lock();
      continue;
    }
    if (state->running == 0) break;
    state->idle.wait(lock, [&] {
      return !state->tasks.empty() || !state->priority_tasks.empty() ||
             state->running == 0;
    });
  }
  state->offer_helper = nullptr;
  state->locality_enabled = false;
  state->last_executor.clear();
  // Retire this drain's helpers BEFORE dropping the mutex: they re-check
  // `active` under the same lock, so no helper can pop a task pushed
  // after this drain's completion was decided.
  active->store(false, std::memory_order_release);
  std::exception_ptr error = std::exchange(state->first_error, nullptr);
  lock.unlock();
  if (error) std::rethrow_exception(error);
}

}  // namespace fpsnr::parallel
