#include "parallel/thread_pool.h"

#include <algorithm>

namespace fpsnr::parallel {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0)
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();  // packaged_task captures exceptions into the future
  }
}

void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& fn) {
  std::vector<std::future<void>> futures;
  futures.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    futures.push_back(pool.submit([&fn, i] { fn(i); }));
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace fpsnr::parallel
