// Process-wide shared worker pool.
//
// The block pipeline used to spin up a fresh ThreadPool for every
// compress/decompress call; for many-small-field workloads (CESM-ATM has 79
// fields) the thread churn dominated. shared_pool() is one lazily-created,
// process-lifetime pool sized to the hardware, and parallel_for_shared()
// runs an indexed loop on it with a caller-chosen concurrency cap.
//
// Nesting safety: the calling thread always participates in the loop, so a
// parallel_for_shared issued from *inside* a shared-pool worker (batch fans
// out fields, each field's pipeline fans out blocks) can never deadlock —
// even if every pool worker is busy, the caller drains the whole loop
// itself.
#pragma once

#include <cstddef>
#include <functional>

#include "parallel/thread_pool.h"

namespace fpsnr::parallel {

/// The process-wide pool (hardware_concurrency workers, created on first
/// use, destroyed at exit). Prefer parallel_for_shared over submitting to
/// it directly.
ThreadPool& shared_pool();

/// Run fn(i) for i in [0, count) with at most `max_workers` concurrent
/// executors (the calling thread plus up to max_workers-1 shared-pool
/// workers). max_workers <= 1 runs the loop inline on the caller. Blocks
/// until every index has run; rethrows the first task exception.
void parallel_for_shared(std::size_t count, std::size_t max_workers,
                         const std::function<void(std::size_t)>& fn);

}  // namespace fpsnr::parallel
