// INTERNAL bridge between the public facade types and the core engine.
//
// session.cpp owns the canonical Target -> ControlRequest mapping and the
// SessionOptions -> core::CompressOptions resolution (engine lookup, budget
// parse, tuning validation, tile/threads). The temporal layer
// (src/temporal/timeseries_session.cpp) drives the same engine with the
// same semantics, so it reuses these instead of cloning the logic — one
// resolver means a Session and a TimeSeriesSession given identical options
// can never drift apart.
#pragma once

#include <cstddef>

#include "core/compressor.h"
#include "fpsnr/session.h"
#include "fpsnr/target.h"

namespace fpsnr::facade {

/// Map a public Target onto the engine's control request.
core::ControlRequest to_request(const Target& target);

/// Resolve SessionOptions exactly as Session's constructor does: engine
/// name -> codec id, budget string, tuning validation + application, block
/// pipeline on, tile shape, and the thread count (hardware concurrency
/// when opts.threads == 0, reported through *threads_out). Throws the same
/// std::invalid_argument diagnostics as Session construction.
core::CompressOptions resolve_session_options(const SessionOptions& opts,
                                              std::size_t* threads_out);

}  // namespace fpsnr::facade
