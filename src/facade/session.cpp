// fpsnr::Session — implementation of the public facade.
//
// This is the only translation unit that bridges the installable
// include/fpsnr headers to the internal src/ layers: it resolves the
// engine name against the codec registry, applies CodecTuning overrides
// onto core::CompressOptions, routes every Target through the
// block-parallel pipeline (or the serial pointwise-rel path, the one mode
// without a block container), and maps Source/Sink shapes onto the
// in-memory, whole-file, raw-file, streaming-writer, and mmap-reader
// entry points. Archives are byte-identical to the legacy core:: free
// functions for equivalent options by construction — both run the same
// engine.
#include "fpsnr/fpsnr.h"

#include <cmath>
#include <cstring>
#include <fstream>
#include <limits>
#include <optional>
#include <stdexcept>
#include <thread>

#include "core/batch.h"
#include "core/compressor.h"
#include "core/pipeline.h"
#include "facade/facade_detail.h"
#include "io/archive.h"
#include "io/streaming_archive.h"
#include "sz/stream_format.h"

namespace fpsnr {

namespace detail {

/// session.cpp's window into the Source/Sink/CodecTuning internals — the
/// public headers stay std-only, the bridging stays here.
struct Access {
  using SourceKind = Source::Kind;
  using SinkKind = Sink::Kind;

  static SourceKind kind(const Source& s) { return s.kind_; }
  static const void* data(const Source& s) { return s.data_; }
  static std::size_t count(const Source& s) { return s.count_; }
  static const std::vector<std::size_t>& dims(const Source& s) {
    return s.dims_;
  }
  static const std::string& path(const Source& s) { return s.path_; }

  static SinkKind kind(const Sink& s) { return s.kind_; }
  static const std::string& path(const Sink& s) { return s.path_; }

  static const auto& values(const CodecTuning& t) { return t.values_; }
};

}  // namespace detail

namespace {

using detail::Access;
using SourceKind = Access::SourceKind;
using SinkKind = Access::SinkKind;

// --- tuning schema ----------------------------------------------------------

struct KeySpec {
  std::string_view key, doc, def;
};

constexpr KeySpec kGenericKeys[] = {
    {"quantization-bins", "quantizer bins (2n in the paper's notation)",
     "65536"},
    {"lossless", "final lossless stage: store|rle|deflate|auto", "deflate"},
};

std::vector<KeySpec> engine_specific_keys(core::CodecId id) {
  switch (id) {
    case core::kCodecSzLorenzo:
      return {{"predictor", "prediction scheme: lorenzo|hybrid", "lorenzo"}};
    case core::kCodecTransformHaar:
      return {{"levels", "Haar decomposition levels", "4"}};
    case core::kCodecTransformDct:
    case core::kCodecZfpRate:
      return {{"dct-block", "DCT tile edge length", "8"}};
    default:
      return {};
  }
}

double parse_number(std::string_view engine, std::string_view key,
                    const std::string& value) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(value, &pos);
    while (pos < value.size() &&
           (value[pos] == ' ' || value[pos] == '\t'))
      ++pos;
    if (pos != value.size()) throw std::invalid_argument("trailing text");
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("tuning " + std::string(engine) + "." +
                                std::string(key) + ": '" + value +
                                "' is not a number");
  }
}

[[noreturn]] void bad_tuning_key(std::string_view engine,
                                 std::string_view key) {
  std::string msg = "tuning: engine '" + std::string(engine) +
                    "' has no knob '" + std::string(key) + "' (valid:";
  for (const TuningKey& k : tuning_keys(engine)) msg += " " + k.key;
  msg += ")";
  throw std::invalid_argument(msg);
}

/// Apply one (key, value) override for the selected engine onto `opts`.
void apply_tuning(std::string_view engine, std::string_view key,
                  const std::string& value, core::CompressOptions& opts) {
  if (key == "quantization-bins") {
    const double v = parse_number(engine, key, value);
    if (!(v >= 4.0) || v > 4294967295.0)
      throw std::invalid_argument("tuning: quantization-bins out of range");
    opts.quantization_bins = static_cast<std::uint32_t>(std::llround(v));
    return;
  }
  if (key == "lossless") {
    if (value == "store") opts.backend = lossless::Method::Store;
    else if (value == "rle") opts.backend = lossless::Method::Rle;
    else if (value == "deflate") opts.backend = lossless::Method::Deflate;
    else if (value == "auto") opts.backend = lossless::Method::Auto;
    else
      throw std::invalid_argument(
          "tuning: lossless must be store|rle|deflate|auto, got '" + value +
          "'");
    return;
  }
  if (key == "predictor") {
    if (value == "lorenzo") opts.sz_predictor = sz::Predictor::Lorenzo;
    else if (value == "hybrid")
      opts.sz_predictor = sz::Predictor::HybridRegression;
    else
      throw std::invalid_argument(
          "tuning: predictor must be lorenzo|hybrid, got '" + value + "'");
    return;
  }
  if (key == "levels") {
    const double v = parse_number(engine, key, value);
    if (!(v >= 1.0) || v > 32.0)
      throw std::invalid_argument("tuning: levels out of 1..32");
    opts.haar_levels = static_cast<unsigned>(std::llround(v));
    return;
  }
  if (key == "dct-block") {
    const double v = parse_number(engine, key, value);
    if (!(v >= 2.0) || v > 4096.0)
      throw std::invalid_argument("tuning: dct-block out of 2..4096");
    opts.dct_block = static_cast<std::size_t>(std::llround(v));
    return;
  }
  bad_tuning_key(engine, key);
}

bool key_known(std::string_view engine_name, core::CodecId id,
               std::string_view key) {
  for (const KeySpec& k : kGenericKeys)
    if (k.key == key) return true;
  for (const KeySpec& k : engine_specific_keys(id))
    if (k.key == key) return true;
  (void)engine_name;
  return false;
}

}  // namespace

// --- request / options resolution (shared with src/temporal via
// facade/facade_detail.h) ----------------------------------------------------

namespace facade {

core::ControlRequest to_request(const Target& target) {
  struct Mapper {
    core::ControlRequest operator()(const FixedPsnr& t) const {
      return core::ControlRequest::fixed_psnr(t.db);
    }
    core::ControlRequest operator()(const FixedNrmse& t) const {
      return core::ControlRequest::fixed_nrmse(t.nrmse);
    }
    core::ControlRequest operator()(const PointwiseAbs& t) const {
      return core::ControlRequest::absolute(t.bound);
    }
    core::ControlRequest operator()(const PointwiseRel& t) const {
      return core::ControlRequest::pointwise(t.fraction);
    }
    core::ControlRequest operator()(const ValueRangeRel& t) const {
      return core::ControlRequest::relative(t.fraction);
    }
    core::ControlRequest operator()(const FixedRate& t) const {
      return core::ControlRequest::fixed_rate(t.bits_per_value);
    }
  };
  return std::visit(Mapper{}, target);
}

core::CompressOptions resolve_session_options(const SessionOptions& opts,
                                              std::size_t* threads_out) {
  core::CompressOptions base;
  auto& registry = core::CodecRegistry::instance();
  const core::CodecId engine_id = registry.id_of(opts.engine);  // may throw
  base.engine = static_cast<core::Engine>(engine_id);

  if (opts.budget == "uniform") base.budget = core::BudgetMode::Uniform;
  else if (opts.budget == "adaptive")
    base.budget = core::BudgetMode::Adaptive;
  else
    throw std::invalid_argument(
        "Session: budget must be uniform|adaptive, got '" + opts.budget +
        "'");

  // Validate EVERY tuning entry up front (unknown engines or keys are
  // session-construction errors, not job-time surprises); apply the
  // selected engine's overrides onto the base options.
  for (const auto& [engine_name, kv] : Access::values(opts.tuning)) {
    const core::CodecId id = registry.id_of(engine_name);  // may throw
    for (const auto& [key, value] : kv) {
      if (!key_known(engine_name, id, key)) bad_tuning_key(engine_name, key);
      if (id == engine_id) apply_tuning(engine_name, key, value, base);
    }
  }

  base.parallel.block_pipeline = true;
  base.parallel.tile = opts.tile.extents;
  const std::size_t threads =
      opts.threads ? opts.threads
                   : std::max<std::size_t>(
                         1, std::thread::hardware_concurrency());
  base.parallel.threads = threads;
  if (threads_out) *threads_out = threads;
  return base;
}

}  // namespace facade

namespace {

/// Facade name of a recorded control mode — derived from target_name() so
/// include/fpsnr/target.h stays the single string table.
std::string facade_mode_name(core::ControlMode m) {
  switch (m) {
    case core::ControlMode::Absolute: return std::string(target_name(PointwiseAbs{}));
    case core::ControlMode::ValueRangeRelative: return std::string(target_name(ValueRangeRel{}));
    case core::ControlMode::PointwiseRelative: return std::string(target_name(PointwiseRel{}));
    case core::ControlMode::FixedPsnr: return std::string(target_name(FixedPsnr{}));
    case core::ControlMode::FixedRate: return std::string(target_name(FixedRate{}));
    case core::ControlMode::FixedNrmse: return std::string(target_name(FixedNrmse{}));
  }
  return "unknown";
}

std::string facade_mode_name(sz::ErrorBoundMode m) {
  switch (m) {
    case sz::ErrorBoundMode::Absolute: return facade_mode_name(core::ControlMode::Absolute);
    case sz::ErrorBoundMode::ValueRangeRelative: return facade_mode_name(core::ControlMode::ValueRangeRelative);
    case sz::ErrorBoundMode::PointwiseRelative: return facade_mode_name(core::ControlMode::PointwiseRelative);
  }
  return "unknown";
}

// --- I/O helpers ------------------------------------------------------------

std::vector<std::uint8_t> read_whole_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

/// Write or throw. open, write, AND flush are all checked so ENOSPC
/// surfacing only at flush time still fails the job instead of leaving a
/// silently truncated archive.
void write_whole_file(const std::string& path, const void* data,
                      std::size_t bytes) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open " + path + " for writing");
  out.write(static_cast<const char*>(data),
            static_cast<std::streamsize>(bytes));
  out.flush();
  if (!out) throw std::runtime_error("write failed on " + path);
}

std::vector<float> load_raw_f32(const std::string& path,
                                const data::Dims& dims) {
  const auto raw = read_whole_file(path);
  if (raw.size() % sizeof(float) != 0)
    throw std::invalid_argument(path + ": size is not a multiple of 4");
  std::vector<float> values(raw.size() / sizeof(float));
  if (!raw.empty()) std::memcpy(values.data(), raw.data(), raw.size());
  if (values.size() != dims.count())
    throw std::invalid_argument(path + ": dims do not match file size");
  return values;
}

data::Dims to_dims(const std::vector<std::size_t>& extents) {
  return data::Dims(std::vector<std::size_t>(extents));
}

/// True when the file at `path` starts with the FPBK magic.
bool file_is_block_container(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::uint8_t magic[4] = {};
  in.read(reinterpret_cast<char*>(magic), 4);
  return in.gcount() == 4 &&
         io::is_block_container(std::span<const std::uint8_t>(magic, 4));
}

std::vector<std::size_t> from_dims(const data::Dims& dims) {
  return dims.extents;
}

}  // namespace

// --- tuning_keys (declared in fpsnr/tuning.h) -------------------------------

std::vector<TuningKey> tuning_keys(std::string_view engine) {
  const auto id = core::CodecRegistry::instance().id_of(engine);  // may throw
  std::vector<TuningKey> out;
  for (const KeySpec& k : kGenericKeys)
    out.push_back({std::string(k.key), std::string(k.doc), std::string(k.def)});
  for (const KeySpec& k : engine_specific_keys(id))
    out.push_back({std::string(k.key), std::string(k.doc), std::string(k.def)});
  return out;
}

// --- Session ----------------------------------------------------------------

struct Session::Impl {
  SessionOptions opts;
  core::CompressOptions base;   ///< engine/budget/tuning resolved once
  std::size_t threads = 1;

  explicit Impl(SessionOptions o) : opts(std::move(o)) {
    base = facade::resolve_session_options(opts, &threads);
  }
};

Session::Session() : Session(SessionOptions{}) {}

Session::Session(SessionOptions options)
    : impl_(std::make_unique<Impl>(std::move(options))) {}

Session::~Session() = default;
Session::Session(Session&&) noexcept = default;
Session& Session::operator=(Session&&) noexcept = default;

const SessionOptions& Session::options() const { return impl_->opts; }

std::size_t Session::threads() const { return impl_->threads; }

std::vector<std::string> Session::engines() {
  std::vector<std::string> out;
  for (std::string_view n : core::CodecRegistry::instance().names())
    out.emplace_back(n);
  return out;
}

namespace {

/// The field a Source resolves to: borrowed spans for memory sources, an
/// owned buffer for raw files.
template <typename T>
struct FieldView {
  std::span<const T> values;
  data::Dims dims;
  std::vector<T> owned;
};

template <typename T>
CompressReport run_compress(const core::CompressOptions& base,
                            std::span<const T> values, const data::Dims& dims,
                            const Target& target, const Sink& sink) {
  const core::ControlRequest request = facade::to_request(target);
  core::CompressOptions opts = base;

  CompressReport report;
  core::CompressResult result;

  const bool pwrel = std::holds_alternative<PointwiseRel>(target);
  if (pwrel) {
    // Pointwise-relative has no block container (the log-domain transform
    // is stream-global); it runs the serial codec and emits the flat
    // stream, byte-identical to legacy core::compress. A stream sink
    // degrades to a buffered whole-file write.
    opts.parallel = {};
    result = core::compress<T>(values, dims, request, opts);
    switch (Access::kind(sink)) {
      case SinkKind::Memory:
        report.archive = std::move(result.stream);
        break;
      case SinkKind::File:
      case SinkKind::Stream:
        write_whole_file(Access::path(sink), result.stream.data(),
                         result.stream.size());
        report.archive_path = Access::path(sink);
        break;
    }
  } else if (Access::kind(sink) == SinkKind::Stream) {
    io::StreamingStats stats;
    result = core::compress_to_file<T>(values, dims, request, opts,
                                       Access::path(sink), &stats);
    report.archive_path = Access::path(sink);
    report.block_count = stats.block_count;
    report.tile.assign(stats.tile.begin(), stats.tile.end());
    report.peak_buffered_bytes = stats.peak_buffered_bytes;
    report.peak_buffered_blocks = stats.peak_buffered_blocks;
  } else {
    result = core::compress_blocked<T>(values, dims, request, opts);
    report.block_count = result.block_count;
    report.tile = result.tile;
    if (Access::kind(sink) == SinkKind::File) {
      write_whole_file(Access::path(sink), result.stream.data(),
                       result.stream.size());
      report.archive_path = Access::path(sink);
    } else {
      report.archive = std::move(result.stream);
    }
  }

  report.value_count = result.info.value_count;
  report.compressed_bytes = result.info.compressed_bytes;
  report.compression_ratio = result.info.compression_ratio;
  report.bit_rate = result.info.bit_rate;
  report.predicted_psnr_db = result.predicted_psnr_db;
  report.achieved_psnr_db = result.achieved_psnr_db;
  report.rel_bound_used = result.rel_bound_used;
  report.outlier_count = result.info.outlier_count;
  return report;
}

}  // namespace

CompressReport Session::compress(const Source& input, const Target& target,
                                 const Sink& output) const {
  switch (Access::kind(input)) {
    case SourceKind::FieldF32: {
      const std::span<const float> values(
          static_cast<const float*>(Access::data(input)),
          Access::count(input));
      return run_compress<float>(impl_->base, values,
                                 to_dims(Access::dims(input)), target,
                                 output);
    }
    case SourceKind::FieldF64: {
      const std::span<const double> values(
          static_cast<const double*>(Access::data(input)),
          Access::count(input));
      return run_compress<double>(impl_->base, values,
                                  to_dims(Access::dims(input)), target,
                                  output);
    }
    case SourceKind::RawFileF32: {
      const data::Dims dims = to_dims(Access::dims(input));
      const auto values = load_raw_f32(Access::path(input), dims);
      return run_compress<float>(impl_->base, values, dims, target, output);
    }
    case SourceKind::ArchiveMemory:
    case SourceKind::ArchiveFile:
      throw std::invalid_argument(
          "Session::compress: input must be a field source "
          "(Source::memory(values, dims) or Source::raw_file)");
  }
  throw std::logic_error("Session::compress: unreachable source kind");
}

namespace {

Field to_field(sz::Decompressed<float>&& d) {
  Field f;
  f.dims = from_dims(d.dims);
  f.f32 = std::move(d.values);
  return f;
}

Field to_field(sz::Decompressed<double>&& d) {
  Field f;
  f.dims = from_dims(d.dims);
  f.f64 = std::move(d.values);
  return f;
}

Field decompress_bytes(std::span<const std::uint8_t> bytes,
                       std::size_t threads) {
  if (io::is_block_container(bytes)) {
    const auto header = io::block_container_header(bytes);
    return header.scalar == 1
               ? to_field(core::decompress_blocked<double>(bytes, threads))
               : to_field(core::decompress_blocked<float>(bytes, threads));
  }
  // Flat streams: FPSZ records its scalar; other legacy flat magics are
  // resolved by attempting float first (the library's default scalar) and
  // falling back to double on a scalar mismatch.
  try {
    const auto h = sz::inspect(bytes);
    return h.scalar == sz::ScalarType::Float64
               ? to_field(core::decompress<double>(bytes))
               : to_field(core::decompress<float>(bytes));
  } catch (const io::StreamError&) {
  }
  try {
    return to_field(core::decompress<float>(bytes));
  } catch (const io::StreamError&) {
    return to_field(core::decompress<double>(bytes));
  }
}

}  // namespace

Field Session::decompress(const Source& archive) const {
  switch (Access::kind(archive)) {
    case SourceKind::ArchiveMemory:
      return decompress_bytes(
          std::span<const std::uint8_t>(
              static_cast<const std::uint8_t*>(Access::data(archive)),
              Access::count(archive)),
          impl_->threads);
    case SourceKind::ArchiveFile: {
      // FPBK archives decode straight off a read-only memory map; flat
      // legacy streams have no block index and are loaded whole (the
      // mmap reader validates the FPBK header eagerly, so probe the magic
      // first).
      if (file_is_block_container(Access::path(archive))) {
        const io::MmapArchiveReader reader(Access::path(archive));
        return decompress_bytes(reader.bytes(), impl_->threads);
      }
      const auto bytes = read_whole_file(Access::path(archive));
      return decompress_bytes(bytes, impl_->threads);
    }
    default:
      throw std::invalid_argument(
          "Session::decompress: input must be an archive source "
          "(Source::memory(bytes) or Source::file)");
  }
}

Field Session::decompress_block(const Source& archive,
                                std::size_t block_index) const {
  auto decode = [&](std::span<const std::uint8_t> bytes) {
    if (!io::is_block_container(bytes))
      throw std::invalid_argument(
          "Session::decompress_block: archive is not a block-pipeline "
          "(FPBK) container");
    const auto header = io::block_container_header(bytes);
    return header.scalar == 1
               ? to_field(core::decompress_block<double>(bytes, block_index))
               : to_field(core::decompress_block<float>(bytes, block_index));
  };
  switch (Access::kind(archive)) {
    case SourceKind::ArchiveMemory:
      return decode(std::span<const std::uint8_t>(
          static_cast<const std::uint8_t*>(Access::data(archive)),
          Access::count(archive)));
    case SourceKind::ArchiveFile: {
      const io::MmapArchiveReader reader(Access::path(archive));
      return decode(reader.bytes());
    }
    default:
      throw std::invalid_argument(
          "Session::decompress_block: input must be an archive source");
  }
}

Inspection Session::inspect(const Source& archive) const {
  std::vector<std::uint8_t> owned;
  std::optional<io::MmapArchiveReader> mapped;
  std::span<const std::uint8_t> bytes;
  switch (Access::kind(archive)) {
    case SourceKind::ArchiveMemory:
      bytes = std::span<const std::uint8_t>(
          static_cast<const std::uint8_t*>(Access::data(archive)),
          Access::count(archive));
      break;
    case SourceKind::ArchiveFile:
      // FPBK containers are memory-mapped: inspect touches only the header
      // and the index columns, never the payload pages. Flat legacy
      // streams have no index and are small enough to load.
      if (file_is_block_container(Access::path(archive))) {
        mapped.emplace(Access::path(archive));
        bytes = mapped->bytes();
      } else {
        owned = read_whole_file(Access::path(archive));
        bytes = owned;
      }
      break;
    default:
      throw std::invalid_argument(
          "Session::inspect: input must be an archive source");
  }

  Inspection out;
  out.archive_bytes = bytes.size();
  if (core::is_block_stream(bytes)) {
    const auto info = core::inspect_block_stream(bytes);
    out.block_container = true;
    out.version = info.version;
    out.codec = std::string(info.codec_name);
    out.target = facade_mode_name(info.control_mode);
    out.target_value = info.control_value;
    out.budget = info.budget_mode == core::BudgetMode::Adaptive ? "adaptive"
                                                                : "uniform";
    out.dims = from_dims(info.dims);
    out.block_count = info.block_count;
    out.tile = info.tile;
    out.eb_abs = info.eb_abs;
    out.value_range = info.value_range;
    out.achieved_psnr_db = info.achieved_psnr_db;
    out.temporal = info.temporal;
    out.delta = info.delta;
    out.series_id = info.series_id;
    out.timestep = info.timestep;
    out.ref_hash = info.ref_hash;
    out.temporal_blocks = info.temporal_blocks;
    return out;
  }
  const auto h = sz::inspect(bytes);  // throws StreamError on foreign bytes
  out.codec = "sz-lorenzo";
  out.target = facade_mode_name(h.mode);
  out.target_value = h.user_bound;
  out.budget = "uniform";
  out.dims = from_dims(h.dims);
  out.eb_abs = h.eb_abs;
  out.value_range = h.value_range;
  out.achieved_psnr_db = std::numeric_limits<double>::quiet_NaN();
  return out;
}

BatchReport Session::compress_batch(const BatchJob& job) const {
  const auto* psnr = std::get_if<FixedPsnr>(&job.target);
  if (!psnr)
    throw std::invalid_argument(
        "Session::compress_batch: only FixedPsnr targets are supported "
        "(the batch engine equalizes a dataset at one PSNR)");
  if (job.fields.empty())
    throw std::invalid_argument("Session::compress_batch: no fields");

  // Fields are borrowed as views — a memory-source batch never copies the
  // dataset; only raw-file fields are loaded, into `loaded`, which the
  // views then reference for the duration of the run.
  std::vector<data::FieldView> views;
  std::vector<std::vector<float>> loaded;
  views.reserve(job.fields.size());
  // Reserve up front: views hold spans into `loaded`'s vectors, and a
  // reallocation of the outer vector would move them (the inner buffers
  // would survive a move, but reserving keeps the aliasing obviously
  // sound).
  loaded.reserve(job.fields.size());
  for (const BatchEntry& entry : job.fields) {
    if (entry.name.empty())
      throw std::invalid_argument("Session::compress_batch: empty field name");
    if (!core::archive_name_ascii(entry.name))
      throw std::invalid_argument("Session::compress_batch: field name '" +
                                  entry.name + "' must be printable ASCII");
    if (entry.name.find_first_of("/\\:") != std::string::npos)
      throw std::invalid_argument(
          "Session::compress_batch: field name '" + entry.name +
          "' must not contain path separators or ':'");
    for (const auto& existing : views)
      if (core::fold_archive_name(existing.name) ==
          core::fold_archive_name(entry.name))
        throw std::invalid_argument(
            "Session::compress_batch: duplicate field name '" + entry.name +
            "' (names are compared case-insensitively)");

    switch (Access::kind(entry.source)) {
      case SourceKind::FieldF32: {
        const auto* p = static_cast<const float*>(Access::data(entry.source));
        views.push_back(
            {entry.name, to_dims(Access::dims(entry.source)),
             std::span<const float>(p, Access::count(entry.source))});
        break;
      }
      case SourceKind::RawFileF32: {
        const data::Dims dims = to_dims(Access::dims(entry.source));
        loaded.push_back(load_raw_f32(Access::path(entry.source), dims));
        views.push_back({entry.name, dims,
                         std::span<const float>(loaded.back())});
        break;
      }
      case SourceKind::FieldF64:
        throw std::invalid_argument(
            "Session::compress_batch: the batch engine is float32-only "
            "(field '" + entry.name + "' is float64)");
      default:
        throw std::invalid_argument(
            "Session::compress_batch: field '" + entry.name +
            "' must be a field source");
    }
  }

  core::BatchOptions opts;
  opts.compress = impl_->base;
  opts.threads = impl_->threads;
  opts.verify = job.verify;
  opts.stream_dir = job.stream_dir;
  opts.keep_streams = job.keep_archives;

  core::BatchResult result =
      core::run_fixed_psnr_batch(views, "session-batch", psnr->db, opts);

  BatchReport report;
  report.target_psnr_db = result.target_psnr_db;
  for (core::FieldOutcome& f : result.fields) {
    BatchFieldReport r;
    r.name = f.field_name;
    r.target_psnr_db = f.target_psnr_db;
    r.predicted_psnr_db = f.predicted_psnr_db;
    r.actual_psnr_db = f.actual_psnr_db;
    r.rel_bound_used = f.rel_bound_used;
    r.compression_ratio = f.compression_ratio;
    r.bit_rate = f.bit_rate;
    r.max_abs_error = f.max_abs_error;
    r.outlier_count = f.outlier_count;
    r.compressed_bytes = f.compressed_bytes;
    r.met_target = f.met_target;
    r.archive = std::move(f.stream);
    r.archive_path = f.archive_path;
    report.fields.push_back(std::move(r));
  }
  for (std::size_t i = 0; i < report.fields.size(); ++i)
    report.fields[i].value_count = views[i].size();
  const auto stats = result.psnr_stats();
  report.mean_psnr_db = stats.mean();
  report.stdev_psnr_db = stats.stdev();
  report.met_fraction = result.met_fraction();
  return report;
}

}  // namespace fpsnr
