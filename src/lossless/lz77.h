// LZ77 match finding with a hash-chain dictionary (the GZIP/DEFLATE
// sliding-window scheme, reimplemented from scratch).
//
// The tokenizer turns a byte stream into a sequence of literals and
// (length, distance) back-references with DEFLATE's parameters:
// 32 KiB window, match lengths 3..258.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace fpsnr::lossless {

inline constexpr std::size_t kWindowSize = 32 * 1024;
inline constexpr std::size_t kMinMatch = 3;
inline constexpr std::size_t kMaxMatch = 258;

/// One LZ77 token: either a literal byte or a back-reference.
struct Token {
  enum class Kind : std::uint8_t { Literal, Match };
  Kind kind;
  std::uint8_t literal = 0;    ///< valid when kind == Literal
  std::uint16_t length = 0;    ///< 3..258, valid when kind == Match
  std::uint16_t distance = 0;  ///< 1..32768, valid when kind == Match

  static Token make_literal(std::uint8_t b) {
    return Token{Kind::Literal, b, 0, 0};
  }
  static Token make_match(std::uint16_t len, std::uint16_t dist) {
    return Token{Kind::Match, 0, len, dist};
  }
  bool operator==(const Token&) const = default;
};

/// Tuning knobs for the matcher (mirrors zlib's level presets in spirit).
struct MatcherConfig {
  std::size_t max_chain_length = 128;  ///< hash-chain probes per position
  std::size_t good_match = 32;         ///< shorten search once a match this long is found
  std::size_t nice_match = 128;        ///< stop searching at this length
  bool lazy_matching = true;           ///< defer by one byte if the next match is longer
};

/// Tokenize `input` into literals and matches.
std::vector<Token> tokenize(std::span<const std::uint8_t> input,
                            const MatcherConfig& config = {});

/// Reconstruct the original bytes from a token stream.
/// Throws io::StreamError (via std::runtime_error) on invalid distances.
std::vector<std::uint8_t> detokenize(std::span<const Token> tokens);

}  // namespace fpsnr::lossless
