// Pluggable lossless backend used as the final stage of the lossy codecs.
//
// Each compressed buffer is self-describing: a one-byte method tag followed
// by the method-specific payload, so the decompressor needs no out-of-band
// configuration. `Method::Auto` tries the configured candidates and keeps
// the smallest result (falling back to Store when compression does not pay).
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "lossless/lz77.h"

namespace fpsnr::lossless {

enum class Method : std::uint8_t {
  Store = 0,    ///< no compression (identity)
  Rle = 1,      ///< byte run-length coding
  Deflate = 2,  ///< LZ77 + canonical Huffman (the GZIP stand-in)
  Auto = 255,   ///< pick the smallest of the above at compress time
};

std::string_view method_name(Method m);

/// Compress with the given method; result starts with the method tag byte.
std::vector<std::uint8_t> backend_compress(std::span<const std::uint8_t> input,
                                           Method method = Method::Auto,
                                           const MatcherConfig& config = {});

/// Decompress a self-describing buffer produced by backend_compress.
std::vector<std::uint8_t> backend_decompress(std::span<const std::uint8_t> compressed);

/// Method tag of a compressed buffer (throws on empty/unknown).
Method backend_method(std::span<const std::uint8_t> compressed);

}  // namespace fpsnr::lossless
