#include "lossless/backend.h"

#include <stdexcept>

#include "io/bitstream.h"  // StreamError
#include "lossless/deflate.h"
#include "lossless/rle.h"

namespace fpsnr::lossless {

std::string_view method_name(Method m) {
  switch (m) {
    case Method::Store: return "store";
    case Method::Rle: return "rle";
    case Method::Deflate: return "deflate";
    case Method::Auto: return "auto";
  }
  return "unknown";
}

namespace {

std::vector<std::uint8_t> with_tag(Method m, std::vector<std::uint8_t> payload) {
  std::vector<std::uint8_t> out;
  out.reserve(payload.size() + 1);
  out.push_back(static_cast<std::uint8_t>(m));
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

}  // namespace

std::vector<std::uint8_t> backend_compress(std::span<const std::uint8_t> input,
                                           Method method,
                                           const MatcherConfig& config) {
  switch (method) {
    case Method::Store:
      return with_tag(Method::Store, {input.begin(), input.end()});
    case Method::Rle:
      return with_tag(Method::Rle, rle_compress(input));
    case Method::Deflate:
      return with_tag(Method::Deflate, deflate_compress(input, config));
    case Method::Auto: {
      auto best = backend_compress(input, Method::Deflate, config);
      auto rle = backend_compress(input, Method::Rle, config);
      if (rle.size() < best.size()) best = std::move(rle);
      if (input.size() + 1 < best.size())
        best = backend_compress(input, Method::Store, config);
      return best;
    }
  }
  throw std::invalid_argument("backend_compress: unknown method");
}

Method backend_method(std::span<const std::uint8_t> compressed) {
  if (compressed.empty())
    throw io::StreamError("backend: empty compressed buffer");
  const auto tag = compressed[0];
  if (tag != static_cast<std::uint8_t>(Method::Store) &&
      tag != static_cast<std::uint8_t>(Method::Rle) &&
      tag != static_cast<std::uint8_t>(Method::Deflate))
    throw io::StreamError("backend: unknown method tag");
  return static_cast<Method>(tag);
}

std::vector<std::uint8_t> backend_decompress(std::span<const std::uint8_t> compressed) {
  const Method m = backend_method(compressed);
  const auto payload = compressed.subspan(1);
  switch (m) {
    case Method::Store:
      return {payload.begin(), payload.end()};
    case Method::Rle:
      return rle_decompress(payload);
    case Method::Deflate:
      return deflate_decompress(payload);
    default:
      throw io::StreamError("backend: unknown method tag");
  }
}

}  // namespace fpsnr::lossless
