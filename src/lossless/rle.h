// Byte-level run-length coding.
//
// A cheap lossless alternative used (a) by the backend auto-selector for
// highly repetitive streams and (b) as a baseline in the component
// throughput benchmark. Format: sequence of (control, payload) groups —
// control byte c < 128 encodes a literal run of c+1 bytes; c >= 128
// encodes a repeat run of (c - 128) + 2 copies of the next byte.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace fpsnr::lossless {

std::vector<std::uint8_t> rle_compress(std::span<const std::uint8_t> input);
std::vector<std::uint8_t> rle_decompress(std::span<const std::uint8_t> compressed);

}  // namespace fpsnr::lossless
