#include "lossless/lz77.h"

#include <algorithm>
#include <stdexcept>

#include "io/bitstream.h"  // StreamError

namespace fpsnr::lossless {

namespace {

constexpr std::size_t kHashBits = 15;
constexpr std::size_t kHashSize = std::size_t{1} << kHashBits;

/// Multiplicative hash of the 3 bytes at p.
inline std::uint32_t hash3(const std::uint8_t* p) {
  const std::uint32_t v = static_cast<std::uint32_t>(p[0]) |
                          (static_cast<std::uint32_t>(p[1]) << 8) |
                          (static_cast<std::uint32_t>(p[2]) << 16);
  return (v * 0x9E3779B1u) >> (32 - kHashBits);
}

/// Length of the common prefix of a and b, capped at max_len.
inline std::size_t match_length(const std::uint8_t* a, const std::uint8_t* b,
                                std::size_t max_len) {
  std::size_t n = 0;
  while (n < max_len && a[n] == b[n]) ++n;
  return n;
}

class HashChainMatcher {
 public:
  HashChainMatcher(std::span<const std::uint8_t> input, const MatcherConfig& cfg)
      : input_(input), cfg_(cfg), head_(kHashSize, kNil), prev_(input.size(), kNil) {}

  struct Match {
    std::size_t length = 0;
    std::size_t distance = 0;
  };

  /// Best match at position `pos` against the 32 KiB window behind it.
  Match find(std::size_t pos) const {
    Match best;
    if (pos + kMinMatch > input_.size()) return best;
    const std::size_t max_len = std::min(kMaxMatch, input_.size() - pos);
    const std::size_t window_start = pos >= kWindowSize ? pos - kWindowSize : 0;
    std::size_t chain_budget = cfg_.max_chain_length;
    std::size_t cand = head_[hash3(input_.data() + pos)];
    while (cand != kNil && cand >= window_start && chain_budget-- > 0) {
      // Quick reject: check the byte that would extend the best match.
      if (best.length == 0 ||
          input_[cand + best.length] == input_[pos + best.length]) {
        const std::size_t len =
            match_length(input_.data() + cand, input_.data() + pos, max_len);
        if (len > best.length) {
          best.length = len;
          best.distance = pos - cand;
          if (len >= cfg_.nice_match || len == max_len) break;
          if (len >= cfg_.good_match) chain_budget = std::min(chain_budget, cfg_.max_chain_length / 4);
        }
      }
      cand = prev_[cand];
    }
    if (best.length < kMinMatch) return {};
    return best;
  }

  /// Register position `pos` in the dictionary.
  void insert(std::size_t pos) {
    if (pos + kMinMatch > input_.size()) return;
    const std::uint32_t h = hash3(input_.data() + pos);
    prev_[pos] = head_[h];
    head_[h] = pos;
  }

 private:
  static constexpr std::size_t kNil = static_cast<std::size_t>(-1);
  std::span<const std::uint8_t> input_;
  const MatcherConfig& cfg_;
  std::vector<std::size_t> head_;
  std::vector<std::size_t> prev_;
};

}  // namespace

std::vector<Token> tokenize(std::span<const std::uint8_t> input,
                            const MatcherConfig& config) {
  std::vector<Token> tokens;
  tokens.reserve(input.size() / 4 + 16);
  HashChainMatcher matcher(input, config);

  std::size_t pos = 0;
  while (pos < input.size()) {
    auto match = matcher.find(pos);
    if (config.lazy_matching && match.length >= kMinMatch &&
        match.length < config.nice_match && pos + 1 < input.size()) {
      // Lazy evaluation: if the match starting one byte later is strictly
      // longer, emit a literal now and take the later match.
      matcher.insert(pos);
      auto next = matcher.find(pos + 1);
      if (next.length > match.length) {
        tokens.push_back(Token::make_literal(input[pos]));
        ++pos;
        continue;
      }
      // Keep the current match; pos was already inserted.
      tokens.push_back(Token::make_match(static_cast<std::uint16_t>(match.length),
                                         static_cast<std::uint16_t>(match.distance)));
      for (std::size_t i = 1; i < match.length; ++i) matcher.insert(pos + i);
      pos += match.length;
      continue;
    }
    if (match.length >= kMinMatch) {
      tokens.push_back(Token::make_match(static_cast<std::uint16_t>(match.length),
                                         static_cast<std::uint16_t>(match.distance)));
      for (std::size_t i = 0; i < match.length; ++i) matcher.insert(pos + i);
      pos += match.length;
    } else {
      tokens.push_back(Token::make_literal(input[pos]));
      matcher.insert(pos);
      ++pos;
    }
  }
  return tokens;
}

std::vector<std::uint8_t> detokenize(std::span<const Token> tokens) {
  std::vector<std::uint8_t> out;
  for (const Token& t : tokens) {
    if (t.kind == Token::Kind::Literal) {
      out.push_back(t.literal);
    } else {
      if (t.distance == 0 || t.distance > out.size())
        throw io::StreamError("lz77: back-reference outside window");
      if (t.length < kMinMatch || t.length > kMaxMatch)
        throw io::StreamError("lz77: match length out of range");
      // Byte-by-byte copy: overlapping references (distance < length)
      // intentionally reuse just-written bytes, like RLE.
      std::size_t src = out.size() - t.distance;
      for (std::size_t i = 0; i < t.length; ++i) out.push_back(out[src + i]);
    }
  }
  return out;
}

}  // namespace fpsnr::lossless
