// DEFLATE-like entropy stage over LZ77 tokens.
//
// Follows RFC 1951's alphabet design — literal/length symbols 0..285 with
// extra bits, distance symbols 0..29 with extra bits, end-of-block = 256 —
// but serializes the two canonical Huffman tables with the library's own
// RLE table format instead of the code-length-code header. One block per
// stream. This is the "GZIP" stage of the SZ pipeline (step 3), built from
// scratch on src/huffman and src/io.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "lossless/lz77.h"

namespace fpsnr::lossless {

/// Compress raw bytes: LZ77 tokenization + two-table Huffman coding.
std::vector<std::uint8_t> deflate_compress(std::span<const std::uint8_t> input,
                                           const MatcherConfig& config = {});

/// Inverse of deflate_compress. Throws io::StreamError on malformed input.
std::vector<std::uint8_t> deflate_decompress(std::span<const std::uint8_t> compressed);

// Exposed for tests: RFC 1951 length/distance symbol mappings.

/// Map a match length (3..258) to (symbol 257..285, extra-bit count, extra-bit value).
struct LengthSym {
  std::uint32_t symbol;
  unsigned extra_bits;
  std::uint32_t extra_value;
};
LengthSym length_to_symbol(unsigned length);

/// Inverse: base length and extra-bit count for a length symbol.
struct LengthInfo {
  unsigned base;
  unsigned extra_bits;
};
LengthInfo length_symbol_info(std::uint32_t symbol);

/// Map a match distance (1..32768) to (symbol 0..29, extra bits, extra value).
struct DistanceSym {
  std::uint32_t symbol;
  unsigned extra_bits;
  std::uint32_t extra_value;
};
DistanceSym distance_to_symbol(unsigned distance);

struct DistanceInfo {
  unsigned base;
  unsigned extra_bits;
};
DistanceInfo distance_symbol_info(std::uint32_t symbol);

inline constexpr std::uint32_t kEndOfBlock = 256;
inline constexpr std::uint32_t kLitLenAlphabet = 286;
inline constexpr std::uint32_t kDistAlphabet = 30;

}  // namespace fpsnr::lossless
