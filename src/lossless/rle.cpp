#include "lossless/rle.h"

#include "io/bitstream.h"  // StreamError

namespace fpsnr::lossless {

namespace {
constexpr std::size_t kMaxLiteralRun = 128;  // control 0..127 -> 1..128 literals
constexpr std::size_t kMaxRepeatRun = 129;   // control 128..255 -> 2..129 repeats
}  // namespace

std::vector<std::uint8_t> rle_compress(std::span<const std::uint8_t> input) {
  std::vector<std::uint8_t> out;
  out.reserve(input.size() / 2 + 8);
  std::size_t i = 0;
  std::size_t literal_start = 0;

  auto flush_literals = [&](std::size_t end) {
    std::size_t pos = literal_start;
    while (pos < end) {
      const std::size_t run = std::min(kMaxLiteralRun, end - pos);
      out.push_back(static_cast<std::uint8_t>(run - 1));
      out.insert(out.end(), input.begin() + static_cast<std::ptrdiff_t>(pos),
                 input.begin() + static_cast<std::ptrdiff_t>(pos + run));
      pos += run;
    }
  };

  while (i < input.size()) {
    std::size_t run = 1;
    while (i + run < input.size() && input[i + run] == input[i] &&
           run < kMaxRepeatRun)
      ++run;
    if (run >= 3) {  // repeats shorter than 3 are cheaper as literals
      flush_literals(i);
      out.push_back(static_cast<std::uint8_t>(128 + (run - 2)));
      out.push_back(input[i]);
      i += run;
      literal_start = i;
    } else {
      i += run;
    }
  }
  flush_literals(input.size());
  return out;
}

std::vector<std::uint8_t> rle_decompress(std::span<const std::uint8_t> compressed) {
  std::vector<std::uint8_t> out;
  std::size_t i = 0;
  while (i < compressed.size()) {
    const std::uint8_t control = compressed[i++];
    if (control < 128) {
      const std::size_t run = static_cast<std::size_t>(control) + 1;
      if (i + run > compressed.size())
        throw io::StreamError("rle: literal run past end of stream");
      out.insert(out.end(), compressed.begin() + static_cast<std::ptrdiff_t>(i),
                 compressed.begin() + static_cast<std::ptrdiff_t>(i + run));
      i += run;
    } else {
      if (i >= compressed.size())
        throw io::StreamError("rle: repeat run missing payload byte");
      const std::size_t run = static_cast<std::size_t>(control - 128) + 2;
      out.insert(out.end(), run, compressed[i++]);
    }
  }
  return out;
}

}  // namespace fpsnr::lossless
