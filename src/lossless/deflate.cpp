#include "lossless/deflate.h"

#include <array>
#include <stdexcept>

#include "huffman/huffman.h"
#include "io/bitstream.h"
#include "io/bytebuffer.h"

namespace fpsnr::lossless {

namespace {

// RFC 1951 §3.2.5 length code table: base length and extra bits for
// symbols 257..285.
constexpr std::array<unsigned, 29> kLengthBase = {
    3,  4,  5,  6,  7,  8,  9,  10, 11,  13,  15,  17,  19,  23, 27,
    31, 35, 43, 51, 59, 67, 83, 99, 115, 131, 163, 195, 227, 258};
constexpr std::array<unsigned, 29> kLengthExtra = {
    0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2,
    2, 3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0};

// RFC 1951 §3.2.5 distance code table: symbols 0..29.
constexpr std::array<unsigned, 30> kDistBase = {
    1,    2,    3,    4,    5,    7,     9,     13,    17,   25,
    33,   49,   65,   97,   129,  193,   257,   385,   513,  769,
    1025, 1537, 2049, 3073, 4097, 6145,  8193,  12289, 16385, 24577};
constexpr std::array<unsigned, 30> kDistExtra = {
    0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6,
    6, 7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13, 13};

}  // namespace

LengthSym length_to_symbol(unsigned length) {
  if (length < kMinMatch || length > kMaxMatch)
    throw std::invalid_argument("deflate: length out of 3..258");
  // Linear scan is fine: table has 29 entries and this is not the hot loop
  // (the matcher is), but binary-search semantics: find last base <= length.
  unsigned idx = 0;
  for (unsigned i = 0; i < kLengthBase.size(); ++i)
    if (kLengthBase[i] <= length) idx = i;
  // Length 258 has its own dedicated symbol (285) with 0 extra bits.
  if (length == kMaxMatch) idx = 28;
  return {257 + idx, kLengthExtra[idx], length - kLengthBase[idx]};
}

LengthInfo length_symbol_info(std::uint32_t symbol) {
  if (symbol < 257 || symbol > 285)
    throw std::invalid_argument("deflate: bad length symbol");
  const unsigned idx = symbol - 257;
  return {kLengthBase[idx], kLengthExtra[idx]};
}

DistanceSym distance_to_symbol(unsigned distance) {
  if (distance < 1 || distance > kWindowSize)
    throw std::invalid_argument("deflate: distance out of 1..32768");
  unsigned idx = 0;
  for (unsigned i = 0; i < kDistBase.size(); ++i)
    if (kDistBase[i] <= distance) idx = i;
  return {idx, kDistExtra[idx], distance - kDistBase[idx]};
}

DistanceInfo distance_symbol_info(std::uint32_t symbol) {
  if (symbol >= kDistAlphabet)
    throw std::invalid_argument("deflate: bad distance symbol");
  return {kDistBase[symbol], kDistExtra[symbol]};
}

std::vector<std::uint8_t> deflate_compress(std::span<const std::uint8_t> input,
                                           const MatcherConfig& config) {
  const std::vector<Token> tokens = tokenize(input, config);

  // Pass 1: symbol frequencies for the two tables.
  std::vector<std::uint64_t> litlen_freq(kLitLenAlphabet, 0);
  std::vector<std::uint64_t> dist_freq(kDistAlphabet, 0);
  for (const Token& t : tokens) {
    if (t.kind == Token::Kind::Literal) {
      ++litlen_freq[t.literal];
    } else {
      ++litlen_freq[length_to_symbol(t.length).symbol];
      ++dist_freq[distance_to_symbol(t.distance).symbol];
    }
  }
  ++litlen_freq[kEndOfBlock];

  const auto litlen_enc = huffman::Encoder::from_frequencies(litlen_freq);
  const auto dist_enc = huffman::Encoder::from_frequencies(dist_freq);

  // Pass 2: emit container + bitstream.
  io::ByteWriter header;
  header.put_varint(input.size());
  litlen_enc.write_table(header);
  dist_enc.write_table(header);

  io::BitWriter bits;
  for (const Token& t : tokens) {
    if (t.kind == Token::Kind::Literal) {
      litlen_enc.encode_symbol(t.literal, bits);
    } else {
      const LengthSym ls = length_to_symbol(t.length);
      litlen_enc.encode_symbol(ls.symbol, bits);
      bits.write_bits(ls.extra_value, ls.extra_bits);
      const DistanceSym ds = distance_to_symbol(t.distance);
      dist_enc.encode_symbol(ds.symbol, bits);
      bits.write_bits(ds.extra_value, ds.extra_bits);
    }
  }
  litlen_enc.encode_symbol(kEndOfBlock, bits);

  auto payload = bits.take();
  header.put_blob(payload);
  return header.take();
}

std::vector<std::uint8_t> deflate_decompress(std::span<const std::uint8_t> compressed) {
  io::ByteReader reader(compressed);
  const std::uint64_t original_size = reader.get_varint();
  const auto litlen_dec = huffman::Decoder::read_table(reader);
  const auto dist_dec = huffman::Decoder::read_table(reader);
  const auto payload = reader.get_blob_view();

  io::BitReader bits(payload);
  std::vector<std::uint8_t> out;
  out.reserve(original_size);
  for (;;) {
    const std::uint32_t sym = litlen_dec.decode_symbol(bits);
    if (sym == kEndOfBlock) break;
    if (sym < 256) {
      out.push_back(static_cast<std::uint8_t>(sym));
      continue;
    }
    const LengthInfo li = length_symbol_info(sym);
    const unsigned length =
        li.base + static_cast<unsigned>(bits.read_bits(li.extra_bits));
    const std::uint32_t dsym = dist_dec.decode_symbol(bits);
    const DistanceInfo di = distance_symbol_info(dsym);
    const unsigned distance =
        di.base + static_cast<unsigned>(bits.read_bits(di.extra_bits));
    if (distance == 0 || distance > out.size())
      throw io::StreamError("deflate: back-reference outside window");
    const std::size_t src = out.size() - distance;
    for (unsigned i = 0; i < length; ++i) out.push_back(out[src + i]);
    if (out.size() > original_size)
      throw io::StreamError("deflate: output exceeds declared size");
  }
  if (out.size() != original_size)
    throw io::StreamError("deflate: output size mismatch with header");
  return out;
}

}  // namespace fpsnr::lossless
