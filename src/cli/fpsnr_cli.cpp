// fpsnr_cli — command-line front end for the fixed-PSNR compressor.
//
//   fpsnr_cli compress   -i data.f32 -d 100x500x500 -m psnr -v 80 -o out.fpbk
//   fpsnr_cli decompress -i out.fpbk -o restored.f32
//   fpsnr_cli inspect    -i out.fpbk
//   fpsnr_cli demo       --dataset atm --psnr 80
//
// Raw input files are little-endian float32 arrays in C order. All
// compression work routes through the fpsnr::Session facade
// (include/fpsnr) — the CLI owns only argument parsing, raw-file I/O, and
// report formatting. Engine names (and the --engine help/error listing)
// come from the live codec registry, so a newly registered codec is
// immediately addressable here with no CLI change.
#include <cmath>
#include <csignal>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <limits>
#include <optional>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "fpsnr/fpsnr.h"
#include "fpsnr/service.h"

#include "core/batch.h"
#include "core/codec_registry.h"
#include "data/dataset.h"
#include "io/archive.h"
#include "simd/dispatch.h"

namespace {

using namespace fpsnr;

[[noreturn]] void usage(const char* msg = nullptr) {
  if (msg) std::cerr << "error: " << msg << "\n\n";
  std::cerr <<
      "fpsnr_cli " << kVersionString << " — fixed-PSNR lossy compression\n"
      "\n"
      "  fpsnr_cli compress   -i IN.f32 -d DIMS -m MODE -v VALUE -o OUT.fpbk\n"
      "      DIMS        e.g. 512, 1800x3600, 100x500x500 (C order)\n"
      "      MODE        psnr | abs | rel | pwrel | nrmse | rate\n"
      "      VALUE       target PSNR (dB) for psnr, bits/value for rate,\n"
      "                  bound otherwise\n"
      "      --predictor lorenzo | hybrid   (default lorenzo; sz engine)\n"
      "      --engine    codec name or alias (default sz); registered:\n"
      << core::CodecRegistry::instance().listing() <<
      "      --budget    uniform | adaptive (default uniform; adaptive\n"
      "                  reallocates per-block error bounds by smoothness\n"
      "                  at the same global PSNR target)\n"
      "      --threads N     block-parallel compression on N workers\n"
      "                      (output bytes are identical for every N)\n"
      "      --simd B        pin the vector backend: auto|scalar|avx2|neon\n"
      "                      (default auto: FPSNR_SIMD env, then CPUID;\n"
      "                      archives are byte-identical on every backend;\n"
      "                      accepted by every subcommand)\n"
      "      --tile NxMxK    per-axis tile extents of the block grid\n"
      "                      (default: auto near-cubic; a 0 extent — or a\n"
      "                      missing trailing axis — spans the field, so\n"
      "                      --tile R is an axis-0 slab of R rows)\n"
      "      --block-size R  DEPRECATED alias for --tile R\n"
      "      --stream        spill blocks to -o as workers finish (peak\n"
      "                      memory stays O(in-flight blocks); the file is\n"
      "                      byte-identical to the in-memory path)\n"
      "      --report-psnr   print the exact achieved PSNR of the archive\n"
      "  fpsnr_cli decompress -i IN.fpbk -o OUT.f32 [--threads N] [--block I]\n"
      "      --block I   random-access decode of block I only\n"
      "      --mmap      memory-map IN instead of loading it; with --block,\n"
      "                  only that block's bytes are ever read\n"
      "      --report-psnr   print the archive's recorded exact PSNR (v2)\n"
      "  fpsnr_cli inspect    -i IN.fpbk\n"
      "  fpsnr_cli compress-batch -i MANIFEST -o OUTDIR [--psnr DB]\n"
      "      compress every field of a dataset manifest to the same PSNR\n"
      "      target, interleaving all fields' blocks on one global work\n"
      "      queue; one FPBK archive per field lands in OUTDIR/<name>.fpbk.\n"
      "      MANIFEST is a text file, one field per line:\n"
      "          <name> <raw-f32-file> <dims>     # '#' starts a comment\n"
      "      (paths are relative to the manifest's directory)\n"
      "      --threads/--engine/--budget/--tile/--predictor pass\n"
      "      through to every field; --stream spills each archive to disk as its blocks\n"
      "      finish; --no-verify skips the decode check and reports the\n"
      "      exact compress-time PSNR from the FPBK v2 SSE index instead\n"
      "  fpsnr_cli compress-series -i MANIFEST -d DIMS -o OUTDIR [-m MODE -v V]\n"
      "      temporal compression of an ordered snapshot series: each frame\n"
      "      is coded per-tile as a delta against the previous frame's\n"
      "      reconstruction (FPBK v4 chain) or spatially, whichever is\n"
      "      smaller; the -m/-v target holds for every frame against its\n"
      "      ORIGINAL data. MANIFEST is a text file, one raw-f32 snapshot\n"
      "      file per line in time order ('#' comments; paths relative to\n"
      "      the manifest); all snapshots share DIMS.\n"
      "      --series NAME          chain identity stamped into every frame\n"
      "                             (default: the manifest's file stem)\n"
      "      --keyframe-interval N  spatial keyframe every N frames\n"
      "                             (default 8; 0 = first frame only,\n"
      "                             1 = every frame)\n"
      "      frames land as OUTDIR/<series>_<t>.fpbk; 'inspect' shows each\n"
      "      frame's chain position\n"
      "  fpsnr_cli demo       [--dataset nyx|atm|hurricane] [--psnr DB]\n"
      "  fpsnr_cli pack       --dataset NAME --psnr DB -o OUT.fpar\n"
      "      compress every field of a synthetic dataset into one archive\n"
      "  fpsnr_cli list       -i IN.fpar\n"
      "  fpsnr_cli unpack     -i IN.fpar --field NAME -o OUT.f32\n"
      "  fpsnr_cli serve      --socket PATH | --tcp PORT  [--threads N]\n"
      "      run fpsnrd, the resident compression service: persistent\n"
      "      Session pool, admission control, priority + deadline\n"
      "      scheduling, live metrics (STATS request; SIGUSR1 dumps to\n"
      "      stderr), graceful drain on SIGTERM/SIGINT (exit 0)\n"
      "      --max-frame-mb M     per-request frame cap (default 1024)\n"
      "      --max-inflight-mb M  admission budget (default 256)\n"
      "  fpsnr_cli client OP  --socket PATH | --tcp PORT\n"
      "      OP = ping | compress | decompress | inspect | stats | shutdown\n"
      "      compress:   -i IN.f32 -d DIMS -m MODE -v VALUE -o OUT.fpbk\n"
      "                  [--engine E] [--budget B] [--tile NxMxK]\n"
      "      decompress: -i IN.fpbk -o OUT.f32\n"
      "      inspect:    -i IN.fpbk\n"
      "      --priority high|normal   jump the server's FIFO lane\n"
      "      --deadline-ms N          reject if not started in time\n"
      "      archives are byte-identical to in-process compression\n";
  std::exit(2);
}

/// Checked integer-flag parser — the parse_dims guard generalized to every
/// numeric flag: a malformed value ('8abc', '-1', '', out of range) is a
/// usage error with exit 2, never a silent truncation, a 2^64 wraparound,
/// or an uncaught std::stoull throw.
std::size_t parse_count(const std::string& flag, const std::string& text) {
  if (text.empty() || text.find_first_not_of("0123456789") != std::string::npos)
    usage((flag + " wants a non-negative integer, got '" + text + "'").c_str());
  try {
    return std::stoull(text);
  } catch (const std::out_of_range&) {
    usage((flag + " value '" + text + "' is out of range").c_str());
  }
}

/// Checked floating-point flag parser: the whole token must parse and be
/// finite ('80abc', '', 'nan' are usage errors with exit 2).
double parse_number(const std::string& flag, const std::string& text) {
  try {
    std::size_t consumed = 0;
    const double value = std::stod(text, &consumed);
    if (consumed != text.size() || !std::isfinite(value))
      usage((flag + " wants a finite number, got '" + text + "'").c_str());
    return value;
  } catch (const std::invalid_argument&) {
    usage((flag + " wants a finite number, got '" + text + "'").c_str());
  } catch (const std::out_of_range&) {
    usage((flag + " value '" + text + "' is out of range").c_str());
  }
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) usage(("cannot open " + path).c_str());
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

/// Write (or die with exit 1). An unwritable path must be an I/O *error*,
/// not a usage error, and it must be detected on the in-memory path exactly
/// like the streaming writer detects it: open, write, AND flush are all
/// checked, so ENOSPC/EDQUOT surfacing only at flush time still fails the
/// run instead of silently exiting 0 with a truncated file.
void write_file(const std::string& path, const void* data, std::size_t bytes) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open " + path + " for writing");
  out.write(static_cast<const char*>(data), static_cast<std::streamsize>(bytes));
  out.flush();
  if (!out) throw std::runtime_error("write failed on " + path);
}

/// Write a decompressed field back out as raw little-endian scalars.
void write_field(const std::string& path, const Field& field) {
  if (field.is_double())
    write_file(path, field.f64.data(), field.f64.size() * sizeof(double));
  else
    write_file(path, field.f32.data(), field.f32.size() * sizeof(float));
}

data::Dims parse_dims(const std::string& s) {
  std::vector<std::size_t> extents;
  std::stringstream ss(s);
  std::string part;
  while (std::getline(ss, part, 'x')) {
    // std::stoull alone would accept '16y999' as 16 and wrap '-1' to
    // 2^64-1 — every token must be pure digits (and fit) or the geometry
    // silently changes.
    if (part.empty() || part.find_first_not_of("0123456789") != std::string::npos)
      usage(("bad dims '" + s + "': '" + part +
             "' is not a number (want e.g. 512, 1800x3600)").c_str());
    try {
      extents.push_back(std::stoull(part));
    } catch (const std::out_of_range&) {
      usage(("bad dims '" + s + "': '" + part + "' is out of range").c_str());
    }
  }
  return data::Dims(std::move(extents));
}

/// Parse --tile NxMxK. Same digit discipline as parse_dims, but 0 extents
/// are allowed (0 = span the field on that axis) and the shape is a
/// request, not a geometry — rank-vs-field validation happens at compress
/// time where the field's dims are known.
std::vector<std::size_t> parse_tile(const std::string& s) {
  std::vector<std::size_t> extents;
  std::stringstream ss(s);
  std::string part;
  while (std::getline(ss, part, 'x')) {
    if (part.empty() || part.find_first_not_of("0123456789") != std::string::npos)
      usage(("bad --tile '" + s + "': '" + part +
             "' is not a number (want e.g. 64, 64x64, 32x32x32)").c_str());
    try {
      extents.push_back(std::stoull(part));
    } catch (const std::out_of_range&) {
      usage(("bad --tile '" + s + "': '" + part + "' is out of range").c_str());
    }
  }
  if (extents.empty() || extents.size() > 3)
    usage(("bad --tile '" + s + "': want 1..3 'x'-separated extents").c_str());
  return extents;
}

/// Render a tile shape as "RxCxS" (or "auto" when empty).
std::string tile_text(const std::vector<std::size_t>& tile) {
  if (tile.empty()) return "auto";
  std::string out;
  for (std::size_t i = 0; i < tile.size(); ++i) {
    if (i) out += 'x';
    out += std::to_string(tile[i]);
  }
  return out;
}

Target parse_target(const std::string& mode, double value) {
  try {
    return make_target(mode, value);
  } catch (const std::invalid_argument&) {
    usage("unknown mode (want psnr|abs|rel|pwrel|nrmse|rate)");
  }
}

struct Args {
  std::string input, output, dims, mode = "psnr", dataset = "atm";
  std::string predictor = "lorenzo", engine = "sz", budget = "uniform", field;
  double value = 80.0;
  std::size_t threads = 0;
  std::string tile;            ///< --tile NxMxK; empty = auto
  std::size_t block_size = 0;  ///< deprecated --block-size alias (slab)
  std::optional<std::size_t> block;  ///< random-access block index
  bool stream = false;  ///< compress: spill blocks to disk as they finish
  bool mmap = false;    ///< decompress: map the archive instead of loading
  bool report_psnr = false;  ///< print the exact recorded PSNR
  bool no_verify = false;    ///< batch: trust the recorded SSE, skip decode
  std::string simd;          ///< vector backend pin; empty = leave auto
  std::string socket;        ///< serve/client: unix-domain socket path
  std::size_t tcp_port = 0;  ///< serve/client: loopback TCP port
  std::string priority = "normal";  ///< client: request priority lane
  std::size_t deadline_ms = 0;      ///< client: per-request deadline
  std::size_t max_frame_mb = 1024;     ///< serve: per-frame payload cap
  std::size_t max_inflight_mb = 256;   ///< serve: admission byte budget
  std::string series;  ///< compress-series: chain name (default: manifest stem)
  std::size_t keyframe_interval = 8;  ///< compress-series: keyframe cadence
};

Args parse_args(int argc, char** argv, int first) {
  Args a;
  for (int i = first; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(("missing value for " + flag).c_str());
      return argv[++i];
    };
    if (flag == "-i" || flag == "--input") a.input = next();
    else if (flag == "-o" || flag == "--output") a.output = next();
    else if (flag == "-d" || flag == "--dims") a.dims = next();
    else if (flag == "-m" || flag == "--mode") a.mode = next();
    else if (flag == "-v" || flag == "--value" || flag == "--psnr")
      a.value = parse_number(flag, next());
    else if (flag == "--dataset") a.dataset = next();
    else if (flag == "--predictor") a.predictor = next();
    else if (flag == "--engine") a.engine = next();
    else if (flag == "--budget") a.budget = next();
    else if (flag == "--field") a.field = next();
    else if (flag == "--threads") a.threads = parse_count(flag, next());
    else if (flag == "--tile") a.tile = next();
    else if (flag == "--block-size") {
      a.block_size = parse_count(flag, next());
      // Deprecated alias for the axis-0 slab geometry; warn once, keep the
      // exit-code behaviour (including the parse errors above) unchanged.
      static bool warned = false;
      if (!warned) {
        warned = true;
        std::cerr << "warning: --block-size is deprecated; use --tile R "
                     "(an axis-0 slab of R rows)\n";
      }
    }
    else if (flag == "--block") a.block = parse_count(flag, next());
    else if (flag == "--stream") a.stream = true;
    else if (flag == "--mmap") a.mmap = true;
    else if (flag == "--report-psnr") a.report_psnr = true;
    else if (flag == "--no-verify") a.no_verify = true;
    else if (flag == "--simd") a.simd = next();
    else if (flag == "--socket") a.socket = next();
    else if (flag == "--tcp") {
      a.tcp_port = parse_count(flag, next());
      if (a.tcp_port == 0 || a.tcp_port > 65535)
        usage("--tcp wants a port in 1..65535");
    }
    else if (flag == "--priority") {
      a.priority = next();
      if (a.priority != "normal" && a.priority != "high")
        usage("--priority wants normal|high");
    }
    else if (flag == "--deadline-ms") a.deadline_ms = parse_count(flag, next());
    else if (flag == "--series") a.series = next();
    else if (flag == "--keyframe-interval")
      a.keyframe_interval = parse_count(flag, next());
    else if (flag == "--max-frame-mb") a.max_frame_mb = parse_count(flag, next());
    else if (flag == "--max-inflight-mb")
      a.max_inflight_mb = parse_count(flag, next());
    else usage(("unknown flag " + flag).c_str());
  }
  return a;
}

/// Apply --simd before any work runs. "auto" (and no flag at all) keeps
/// the env/CPUID selection; a concrete backend is pinned via
/// force_backend. An unsupported backend is a hard usage error, not the
/// dispatcher's loud-scalar fallback: the user asked for a specific ISA
/// by name, so silently measuring scalar would be a lie.
void apply_simd(const Args& a) {
  if (a.simd.empty()) return;
  std::optional<simd::Backend> backend;
  if (!simd::parse_backend(a.simd, &backend))
    usage(("unknown --simd backend '" + a.simd +
           "' (want auto|scalar|avx2|neon)").c_str());
  if (!backend) {
    simd::reset_backend();
    return;
  }
  if (!simd::force_backend(*backend)) {
    std::string have;
    for (const simd::Backend b : simd::supported_backends()) {
      if (!have.empty()) have += '|';
      have += simd::backend_name(b);
    }
    usage(("--simd " + a.simd + " is not supported on this host (have " +
           have + ")").c_str());
  }
}

/// Resolve --engine against the live codec registry (primary names and
/// aliases both work); anything else prints the registry listing and exits
/// 2. No name table exists here — the registry is the single source of
/// truth for what --engine accepts.
std::string resolve_engine(const std::string& name) {
  const auto& registry = core::CodecRegistry::instance();
  try {
    return std::string(registry.at(registry.id_of(name)).name());
  } catch (const std::out_of_range&) {
    std::cerr << "error: unknown engine '" << name
              << "'\nregistered codecs:\n"
              << registry.listing();
    std::exit(2);
  }
}

/// Build the Session every subcommand shares from the parsed flags.
Session make_session(const Args& a) {
  SessionOptions opts;
  opts.engine = resolve_engine(a.engine);
  if (a.budget != "uniform" && a.budget != "adaptive")
    usage("unknown budget mode (want uniform|adaptive)");
  opts.budget = a.budget;
  opts.threads = a.threads;
  if (!a.tile.empty() && a.block_size)
    usage("--tile and --block-size are mutually exclusive");
  if (!a.tile.empty())
    opts.tile = TileShape(parse_tile(a.tile));
  else if (a.block_size)
    opts.tile = TileShape::slab(a.block_size);
  if (a.predictor != "lorenzo" && a.predictor != "hybrid")
    usage("unknown predictor (want lorenzo|hybrid)");
  // The predictor knob belongs to the sz engine; other engines have no
  // such stage and the flag stays inert for them (tuning is validated
  // per-engine, so it is only set where it applies).
  if (opts.engine == "sz-lorenzo")
    opts.tuning.set("sz-lorenzo", "predictor", a.predictor);
  return Session(std::move(opts));
}

/// Load raw little-endian float32 values and wrap them as a named field.
data::Field load_field(const std::string& name, const std::string& path,
                       const data::Dims& dims) {
  const auto raw = read_file(path);
  if (raw.size() % sizeof(float) != 0)
    usage((path + ": size is not a multiple of 4").c_str());
  std::vector<float> values(raw.size() / sizeof(float));
  if (!raw.empty()) std::memcpy(values.data(), raw.data(), raw.size());
  if (dims.count() != values.size())
    usage((path + ": dims do not match file size").c_str());
  return {name, dims, std::move(values)};
}

int cmd_compress(const Args& a) {
  if (a.input.empty() || a.output.empty() || a.dims.empty())
    usage("compress needs -i, -o, -d");
  const data::Dims dims = parse_dims(a.dims);
  const data::Field field = load_field("input", a.input, dims);
  const Target target = parse_target(a.mode, a.value);

  const Session session = make_session(a);
  const Source source = Source::memory(field.span(), dims.extents);
  const CompressReport report = session.compress(
      source, target, a.stream ? Sink::stream(a.output) : Sink::file(a.output));

  if (a.stream)
    std::cout << "streamed to " << a.output << ": peak reorder buffer "
              << report.peak_buffered_bytes << " bytes ("
              << report.peak_buffered_blocks << " block(s)) vs "
              << report.compressed_bytes << " container bytes\n";
  std::cout << "compressed " << report.value_count << " values -> "
            << report.compressed_bytes << " bytes  (ratio "
            << std::fixed << std::setprecision(2) << report.compression_ratio
            << ", " << report.bit_rate << " bits/value)\n";
  if (report.block_count > 0)
    std::cout << "block pipeline: " << report.block_count << " block(s), tile "
              << tile_text(report.tile) << ", codec "
              << session.options().engine << ", " << session.threads()
              << " thread(s), simd "
              << simd::backend_name(simd::active_backend()) << "\n";
  // Match on the parsed Target, not the raw -m string, so the long-form
  // spellings ("fixed-psnr", "fixed-rate") get the same summary lines.
  if (std::holds_alternative<FixedPsnr>(target))
    std::cout << "target PSNR " << a.value << " dB, eb_rel used "
              << std::scientific << report.rel_bound_used << "\n";
  if (std::holds_alternative<FixedRate>(target))
    std::cout << "target rate " << a.value << " bits/value, achieved "
              << std::fixed << std::setprecision(3) << report.bit_rate
              << " bits/value\n";
  if (a.report_psnr) {
    if (std::isnan(report.achieved_psnr_db))
      std::cout << "achieved PSNR: not tracked for this mode\n";
    else
      std::cout << "achieved PSNR " << std::fixed << std::setprecision(6)
                << report.achieved_psnr_db
                << " dB (exact, measured at compress time)\n";
  }
  return 0;
}

/// Print the exact PSNR recorded in a v2 archive's per-block SSE column.
/// `is_fpbk` is the caller's magic probe: only FPBK containers are
/// inspected, so real I/O/corruption errors propagate and fail the run
/// instead of printing a benign n/a line.
void report_archive_psnr(const Session& session, const Source& archive,
                         bool is_fpbk) {
  if (!is_fpbk) {
    std::cout << "recorded PSNR: n/a (not an FPBK archive)\n";
    return;
  }
  const Inspection info = session.inspect(archive);
  if (std::isnan(info.achieved_psnr_db))
    std::cout << "recorded PSNR: n/a (v1 archive, no per-block SSE index)\n";
  else
    std::cout << "recorded PSNR " << std::fixed << std::setprecision(6)
              << info.achieved_psnr_db << " dB (exact, from per-block SSE)\n";
}

int cmd_decompress(const Args& a) {
  if (a.input.empty() || a.output.empty()) usage("decompress needs -i, -o");
  const Session session = make_session(a);
  if (a.mmap) {
    // Memory-map the archive: the payload is faulted in lazily, and with
    // --block only that block's extent is ever read. Requires the block
    // container (legacy flat streams have no index to seek).
    {
      std::ifstream probe(a.input, std::ios::binary);
      std::uint8_t magic[4] = {};
      probe.read(reinterpret_cast<char*>(magic), 4);
      if (probe.gcount() != 4 ||
          !io::is_block_container(std::span<const std::uint8_t>(magic, 4)))
        usage("--mmap requires a block-pipeline (FPBK) archive "
              "(compress with --threads/--tile/--stream)");
    }
    const Source source = Source::file(a.input);
    const Field d = a.block ? session.decompress_block(source, *a.block)
                            : session.decompress(source);
    write_field(a.output, d);
    if (a.block)
      std::cout << "decompressed block " << *a.block << ": " << d.size()
                << " values (" << d.dims[0] << " row(s), mmap)\n";
    else
      std::cout << "decompressed " << d.size() << " values (rank "
                << d.dims.size() << ", mmap)\n";
    if (a.report_psnr)
      report_archive_psnr(session, source, /*is_fpbk=*/true);  // probed above
    return 0;
  }
  const auto stream = read_file(a.input);
  const Source source = Source::memory(std::span<const std::uint8_t>(stream));
  if (a.block) {
    Field d;
    try {
      d = session.decompress_block(source, *a.block);
    } catch (const std::invalid_argument&) {
      usage("--block requires a block-pipeline (FPBK) stream");
    }
    write_field(a.output, d);
    std::cout << "decompressed block " << *a.block << ": " << d.size()
              << " values (" << d.dims[0] << " row(s))\n";
    return 0;
  }
  const Field d = session.decompress(source);
  write_field(a.output, d);
  std::cout << "decompressed " << d.size() << " values (rank "
            << d.dims.size() << ")\n";
  if (a.report_psnr)
    report_archive_psnr(session, source,
                        io::is_block_container(std::span<const std::uint8_t>(stream)));
  return 0;
}

int cmd_inspect(const Args& a) {
  if (a.input.empty()) usage("inspect needs -i");
  const auto stream = read_file(a.input);
  const Session session = make_session(a);
  const auto info =
      session.inspect(Source::memory(std::span<const std::uint8_t>(stream)));
  if (info.block_container) {
    std::cout << "container   : block-parallel (FPBK v"
              << static_cast<int>(info.version) << ")\n"
              << "codec       : " << info.codec << "\n"
              << "control     : " << info.target << " = " << info.target_value
              << "\n"
              << "budget      : " << info.budget << "\n"
              << "rank        : " << info.dims.size() << "\n";
    std::cout << "extents     : ";
    for (std::size_t i = 0; i < info.dims.size(); ++i)
      std::cout << (i ? " x " : "") << info.dims[i];
    std::cout << "\n"
              << "blocks      : " << info.block_count << ", tile "
              << tile_text(info.tile) << "\n"
              << "eb_abs      : " << std::scientific << info.eb_abs << "\n"
              << "value range : " << info.value_range << "\n";
    if (info.temporal) {
      std::cout << "chain       : series 0x" << std::hex << info.series_id
                << std::dec << ", timestep " << info.timestep << " ("
                << (info.delta ? "delta frame" : "keyframe") << ")\n";
      if (info.delta)
        std::cout << "reference   : 0x" << std::hex << info.ref_hash
                  << std::dec << " (reconstruction hash of timestep "
                  << (info.timestep - 1) << ")\n";
      std::cout << "temporal    : " << info.temporal_blocks << " of "
                << info.block_count << " block(s) delta-coded\n";
    }
    if (std::isnan(info.achieved_psnr_db))
      std::cout << "exact PSNR  : n/a (v1 archive)\n";
    else
      std::cout << "exact PSNR  : " << std::fixed << std::setprecision(6)
                << info.achieved_psnr_db << " dB\n";
    std::cout << "stream size : " << info.archive_bytes << " bytes\n";
    return 0;
  }
  std::cout << "container   : flat stream\n"
            << "codec       : " << info.codec << "\n"
            << "control     : " << info.target << " = " << info.target_value
            << "\n"
            << "rank        : " << info.dims.size() << "\n";
  std::cout << "extents     : ";
  for (std::size_t i = 0; i < info.dims.size(); ++i)
    std::cout << (i ? " x " : "") << info.dims[i];
  std::cout << "\n"
            << "eb_abs      : " << std::scientific << info.eb_abs << "\n"
            << "value range : " << info.value_range << "\n"
            << "stream size : " << info.archive_bytes << " bytes\n";
  return 0;
}

/// Parse a batch manifest: one `<name> <raw-file> <dims>` triple per line,
/// '#' comments, blank lines ignored. Relative file paths resolve against
/// the manifest's own directory so a dataset folder is self-contained.
data::Dataset read_manifest(const std::string& manifest_path) {
  std::ifstream in(manifest_path);
  if (!in) usage(("cannot open " + manifest_path).c_str());
  const auto base = std::filesystem::path(manifest_path).parent_path();

  data::Dataset ds;
  ds.name = std::filesystem::path(manifest_path).stem().string();
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (const auto hash = line.find('#'); hash != std::string::npos)
      line.erase(hash);
    std::istringstream fields(line);
    std::string name, file, dims_text;
    if (!(fields >> name)) continue;  // blank / comment-only line
    if (!(fields >> file >> dims_text))
      usage(("manifest line " + std::to_string(lineno) +
             ": want '<name> <raw-f32-file> <dims>'").c_str());
    // Reject trailing tokens: '128 x128' silently parsing as dims "128"
    // would surface as a confusing size-mismatch error much later.
    if (std::string extra; fields >> extra)
      usage(("manifest line " + std::to_string(lineno) +
             ": unexpected trailing token '" + extra + "'").c_str());
    // The name becomes OUTDIR/<name>.fpbk: a path separator would let a
    // manifest write outside OUTDIR, and a duplicate would make two
    // writers fight over one archive. The duplicate check folds case —
    // 'U' and 'u' are one file on default macOS/Windows volumes.
    // ':' covers Windows drive-relative root-names ("C:payload"), which
    // would make OUTDIR/<name> discard OUTDIR entirely.
    if (name.find_first_of("/\\:") != std::string::npos)
      usage(("manifest line " + std::to_string(lineno) + ": field name '" +
             name + "' must not contain path separators or ':'").c_str());
    if (!core::archive_name_ascii(name))
      usage(("manifest line " + std::to_string(lineno) + ": field name '" +
             name + "' must be printable ASCII (filesystem case folding "
             "of non-ASCII names is volume-specific)").c_str());
    for (const auto& existing : ds.fields)
      if (core::fold_archive_name(existing.name) ==
          core::fold_archive_name(name))
        usage(("manifest line " + std::to_string(lineno) +
               ": duplicate field name '" + name +
               "' (names are compared case-insensitively: archives share "
               "one file per name on case-insensitive filesystems)").c_str());
    std::filesystem::path path(file);
    if (path.is_relative()) path = base / path;
    ds.fields.push_back(load_field(name, path.string(), parse_dims(dims_text)));
  }
  if (ds.fields.empty()) usage("manifest lists no fields");
  return ds;
}

int cmd_compress_batch(const Args& a) {
  if (a.input.empty() || a.output.empty())
    usage("compress-batch needs -i MANIFEST -o OUTDIR");
  // The batch engine is fixed-PSNR by definition; silently reinterpreting
  // an `abs`/`rel` bound as a dB target would shred every field.
  if (a.mode != "psnr")
    usage("compress-batch supports only fixed-PSNR mode (-m psnr / --psnr DB)");
  const data::Dataset ds = read_manifest(a.input);

  const Session session = make_session(a);
  BatchJob job;
  job.target = FixedPsnr{a.value};
  job.verify = !a.no_verify;
  std::filesystem::create_directories(a.output);
  if (a.stream)
    job.stream_dir = a.output;  // archives land as their blocks finish
  else
    job.keep_archives = true;  // written below, after the batch returns
  for (const auto& f : ds.fields)
    job.fields.push_back({f.name, Source::memory(f.span(), f.dims.extents)});

  const BatchReport batch = session.compress_batch(job);

  std::size_t raw_total = 0, compressed_total = 0;
  std::cout << std::left << std::setw(14) << "field" << std::right
            << std::setw(12) << "values" << std::setw(12) << "bytes"
            << std::setw(9) << "ratio" << std::setw(12) << "PSNR(dB)"
            << std::setw(6) << "met\n";
  for (const auto& f : batch.fields) {
    if (!a.stream) {
      const auto path =
          (std::filesystem::path(a.output) / (f.name + ".fpbk")).string();
      write_file(path, f.archive.data(), f.archive.size());
    }
    raw_total += f.value_count * sizeof(float);
    compressed_total += f.compressed_bytes;
    std::cout << std::left << std::setw(14) << f.name << std::right
              << std::setw(12) << f.value_count << std::setw(12)
              << f.compressed_bytes << std::setw(9) << std::fixed
              << std::setprecision(2) << f.compression_ratio << std::setw(12)
              << f.actual_psnr_db << std::setw(5)
              << (f.met_target ? "yes" : "no") << "\n";
  }

  std::cout << "\n" << batch.fields.size() << " field(s) -> " << a.output
            << ": " << raw_total << " raw -> " << compressed_total
            << " compressed bytes (ratio " << std::fixed
            << std::setprecision(2)
            << (compressed_total
                    ? static_cast<double>(raw_total) /
                          static_cast<double>(compressed_total)
                    : 0.0)
            << ")\n"
            << "target " << a.value << " dB: AVG " << batch.mean_psnr_db
            << " dB, STDEV " << batch.stdev_psnr_db << " dB, met "
            << 100.0 * batch.met_fraction << "%\n"
            << "queue: " << session.threads()
            << " worker(s) over " << batch.fields.size()
            << " field(s); per-field archives are byte-identical at any "
               "thread count\n";
  return 0;
}

/// Parse a series manifest: one raw-f32 snapshot file per line, in time
/// order. '#' comments and blank lines are ignored; relative paths resolve
/// against the manifest's own directory, like the batch manifest.
std::vector<std::string> read_series_manifest(const std::string& path) {
  std::ifstream in(path);
  if (!in) usage(("cannot open " + path).c_str());
  const auto base = std::filesystem::path(path).parent_path();
  std::vector<std::string> files;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (const auto hash = line.find('#'); hash != std::string::npos)
      line.erase(hash);
    std::istringstream fields(line);
    std::string file;
    if (!(fields >> file)) continue;  // blank / comment-only line
    if (std::string extra; fields >> extra)
      usage(("series manifest line " + std::to_string(lineno) +
             ": unexpected trailing token '" + extra +
             "' (want one raw-f32 file per line)").c_str());
    std::filesystem::path p(file);
    if (p.is_relative()) p = base / p;
    files.push_back(p.string());
  }
  if (files.empty()) usage("series manifest lists no snapshots");
  return files;
}

int cmd_compress_series(const Args& a) {
  if (a.input.empty() || a.output.empty() || a.dims.empty())
    usage("compress-series needs -i MANIFEST, -o OUTDIR, -d DIMS");
  const data::Dims dims = parse_dims(a.dims);
  const std::vector<std::string> files = read_series_manifest(a.input);

  TimeSeriesOptions topts;
  // Frame options resolve exactly as make_session resolves them for a
  // Session, so a series frame and a spatial archive of the same snapshot
  // use the same engine stack.
  topts.session.engine = resolve_engine(a.engine);
  if (a.budget != "uniform" && a.budget != "adaptive")
    usage("unknown budget mode (want uniform|adaptive)");
  topts.session.budget = a.budget;
  topts.session.threads = a.threads;
  if (!a.tile.empty() && a.block_size)
    usage("--tile and --block-size are mutually exclusive");
  if (!a.tile.empty())
    topts.session.tile = TileShape(parse_tile(a.tile));
  else if (a.block_size)
    topts.session.tile = TileShape::slab(a.block_size);
  if (a.predictor != "lorenzo" && a.predictor != "hybrid")
    usage("unknown predictor (want lorenzo|hybrid)");
  if (topts.session.engine == "sz-lorenzo")
    topts.session.tuning.set("sz-lorenzo", "predictor", a.predictor);
  topts.series = a.series.empty()
                     ? std::filesystem::path(a.input).stem().string()
                     : a.series;
  // The series name becomes OUTDIR/<series>_<t>.fpbk — same escape hatch
  // the batch manifest closes for field names.
  if (topts.series.find_first_of("/\\:") != std::string::npos)
    usage("--series name must not contain path separators or ':'");
  topts.keyframe_interval = a.keyframe_interval;
  // Frames are written to disk as they are produced; holding the whole
  // series in memory too would double the footprint for nothing.
  topts.keep_archives = false;

  const Target target = parse_target(a.mode, a.value);
  TimeSeriesSession series(target, std::move(topts));
  std::filesystem::create_directories(a.output);

  std::size_t raw_total = 0, compressed_total = 0;
  std::cout << std::left << std::setw(6) << "t" << std::setw(10) << "kind"
            << std::right << std::setw(12) << "bytes" << std::setw(9)
            << "ratio" << std::setw(16) << "delta blocks\n";
  for (std::size_t t = 0; t < files.size(); ++t) {
    const data::Field snap =
        load_field("t" + std::to_string(t), files[t], dims);
    Field frame;
    frame.dims = dims.extents;
    frame.f32 = snap.values;
    const SnapshotRecord rec = series.push(frame);

    const auto path = (std::filesystem::path(a.output) /
                       (series.options().series + "_" + std::to_string(t) +
                        ".fpbk")).string();
    write_file(path, rec.report.archive.data(), rec.report.archive.size());
    raw_total += rec.report.value_count * sizeof(float);
    compressed_total += rec.report.compressed_bytes;
    std::cout << std::left << std::setw(6) << t << std::setw(10)
              << (rec.keyframe ? "keyframe" : "delta") << std::right
              << std::setw(12) << rec.report.compressed_bytes << std::setw(9)
              << std::fixed << std::setprecision(2)
              << rec.report.compression_ratio << std::setw(8)
              << rec.temporal_blocks << "/" << rec.block_count << "\n";
  }

  std::cout << "\n" << files.size() << " frame(s) -> " << a.output << ": "
            << raw_total << " raw -> " << compressed_total
            << " compressed bytes (series ratio " << std::fixed
            << std::setprecision(2)
            << (compressed_total ? static_cast<double>(raw_total) /
                                       static_cast<double>(compressed_total)
                                 : 0.0)
            << ")\n"
            << "chain: series '" << series.options().series
            << "', keyframe every "
            << (a.keyframe_interval
                    ? std::to_string(a.keyframe_interval) + " frame(s)"
                    : std::string("first frame only"))
            << "; decode in order with a TimeSeriesDecoder\n";
  return 0;
}

data::Dataset make_named_dataset(const std::string& name) {
  data::DatasetConfig cfg;
  if (name == "nyx") return data::make_nyx(cfg);
  if (name == "atm") return data::make_atm(cfg);
  if (name == "hurricane") return data::make_hurricane(cfg);
  usage("unknown dataset (want nyx|atm|hurricane)");
}

int cmd_pack(const Args& a) {
  if (a.output.empty()) usage("pack needs -o");
  const data::Dataset ds = make_named_dataset(a.dataset);
  const Session session = make_session(a);
  std::vector<io::ArchiveEntry> entries;
  for (const auto& f : ds.fields) {
    io::ArchiveEntry e;
    e.name = f.name;
    e.bytes = session
                  .compress(Source::memory(f.span(), f.dims.extents),
                            FixedPsnr{a.value}, Sink::memory())
                  .archive;
    entries.push_back(std::move(e));
  }
  const auto archive = io::write_archive(entries);
  write_file(a.output, archive.data(), archive.size());
  std::cout << "packed " << ds.field_count() << " fields ("
            << ds.total_bytes() << " raw bytes) into " << archive.size()
            << " bytes at " << a.value << " dB\n";
  return 0;
}

int cmd_list(const Args& a) {
  if (a.input.empty()) usage("list needs -i");
  const auto archive = read_file(a.input);
  for (const auto& name : io::list_archive(archive)) std::cout << name << "\n";
  return 0;
}

int cmd_unpack(const Args& a) {
  if (a.input.empty() || a.output.empty() || a.field.empty())
    usage("unpack needs -i, -o, --field");
  const auto archive = read_file(a.input);
  const auto stream = io::archive_entry(archive, a.field);
  const Session session = make_session(a);
  const Field d =
      session.decompress(Source::memory(std::span<const std::uint8_t>(stream)));
  write_field(a.output, d);
  std::cout << "extracted " << a.field << ": " << d.size() << " values\n";
  return 0;
}

int cmd_demo(const Args& a) {
  data::Dataset ds = make_named_dataset(a.dataset);

  std::cout << "dataset " << ds.name << ": " << ds.field_count() << " fields, "
            << ds.total_bytes() / (1024.0 * 1024.0) << " MB raw\n"
            << "target PSNR " << a.value << " dB (fixed-PSNR mode)\n\n";

  const Session session = make_session(a);
  BatchJob job;
  job.target = FixedPsnr{a.value};
  for (const auto& f : ds.fields)
    job.fields.push_back({f.name, Source::memory(f.span(), f.dims.extents)});
  const BatchReport batch = session.compress_batch(job);

  std::cout << std::left << std::setw(12) << "field" << std::right
            << std::setw(12) << "actual dB" << std::setw(10) << "ratio"
            << std::setw(8) << "met\n";
  for (const auto& f : batch.fields)
    std::cout << std::left << std::setw(12) << f.name << std::right
              << std::setw(12) << std::fixed << std::setprecision(2)
              << f.actual_psnr_db << std::setw(10) << f.compression_ratio
              << std::setw(7) << (f.met_target ? "yes" : "no") << "\n";
  std::cout << "\nAVG " << batch.mean_psnr_db << " dB, STDEV "
            << batch.stdev_psnr_db << " dB, met "
            << 100.0 * batch.met_fraction << "%\n";
  return 0;
}

service::Endpoint endpoint_from(const Args& a, const char* who) {
  if (a.socket.empty() == (a.tcp_port == 0))
    usage((std::string(who) +
           " needs exactly one of --socket PATH or --tcp PORT").c_str());
  service::Endpoint ep;
  ep.socket_path = a.socket;
  ep.tcp_port = static_cast<std::uint16_t>(a.tcp_port);
  return ep;
}

#if !defined(_WIN32)

/// The running daemon, for the signal handlers: request_shutdown and
/// request_stats_dump are async-signal-safe (one pipe write each).
service::Server* g_server = nullptr;

extern "C" void fpsnrd_on_terminate(int) {
  if (g_server) g_server->request_shutdown();
}
extern "C" void fpsnrd_on_usr1(int) {
  if (g_server) g_server->request_stats_dump();
}

int cmd_serve(const Args& a) {
  service::ServerOptions opts;
  opts.endpoint = endpoint_from(a, "serve");
  opts.threads = a.threads;
  opts.max_frame_bytes = a.max_frame_mb << 20;
  opts.max_in_flight_bytes = a.max_inflight_mb << 20;
  service::Server server(std::move(opts));
  g_server = &server;
  // SIGTERM/SIGINT begin the graceful drain (stop accepting, answer every
  // admitted request, exit 0); SIGUSR1 dumps live metrics to stderr. A
  // vanished client must be an EPIPE error on its own connection, never a
  // process-wide SIGPIPE.
  std::signal(SIGTERM, fpsnrd_on_terminate);
  std::signal(SIGINT, fpsnrd_on_terminate);
  std::signal(SIGUSR1, fpsnrd_on_usr1);
  std::signal(SIGPIPE, SIG_IGN);
  if (!a.socket.empty())
    std::cerr << "fpsnrd: listening on " << a.socket << "\n";
  else
    std::cerr << "fpsnrd: listening on 127.0.0.1:" << a.tcp_port << "\n";
  const int rc = server.run();
  g_server = nullptr;
  return rc;
}

#else

int cmd_serve(const Args&) { usage("serve is not supported on this platform"); }

#endif  // !defined(_WIN32)

int cmd_client(const std::string& op, const Args& a) {
  if (a.deadline_ms > std::numeric_limits<std::uint32_t>::max())
    usage("--deadline-ms value is out of range");
  service::Client client(endpoint_from(a, "client"));
  service::RequestOptions ropts;
  ropts.priority = a.priority == "high";
  ropts.deadline_ms = static_cast<std::uint32_t>(a.deadline_ms);

  if (op == "ping") {
    client.ping();
    std::cout << "pong\n";
    return 0;
  }
  if (op == "stats") {
    std::cout << client.stats();
    return 0;
  }
  if (op == "shutdown") {
    client.shutdown_server();
    std::cout << "server draining\n";
    return 0;
  }
  if (op == "compress") {
    if (a.input.empty() || a.output.empty() || a.dims.empty())
      usage("client compress needs -i, -o, -d");
    const data::Dims dims = parse_dims(a.dims);
    const data::Field field = load_field("input", a.input, dims);
    service::CompressSpec spec;
    spec.engine = resolve_engine(a.engine);
    spec.budget = a.budget;
    spec.mode = a.mode;
    spec.value = a.value;
    if (!a.tile.empty() && a.block_size)
      usage("--tile and --block-size are mutually exclusive");
    if (!a.tile.empty())
      spec.tile = parse_tile(a.tile);
    else if (a.block_size)
      spec.tile = {a.block_size};
    spec.dims = dims.extents;
    const service::CompressResult r = client.compress(field.span(), spec, ropts);
    write_file(a.output, r.archive.data(), r.archive.size());
    std::cout << "compressed " << r.value_count << " values -> "
              << r.compressed_bytes << " bytes over the socket ("
              << std::fixed << std::setprecision(3) << r.bit_rate
              << " bits/value)\n";
    if (a.report_psnr && !std::isnan(r.achieved_psnr_db))
      std::cout << "achieved PSNR " << std::fixed << std::setprecision(6)
                << r.achieved_psnr_db << " dB (exact, server-measured)\n";
    return 0;
  }
  if (op == "decompress") {
    if (a.input.empty() || a.output.empty())
      usage("client decompress needs -i, -o");
    const auto archive = read_file(a.input);
    const Field d = client.decompress(
        std::span<const std::uint8_t>(archive), ropts);
    write_field(a.output, d);
    std::cout << "decompressed " << d.size() << " values (rank "
              << d.dims.size() << ", remote)\n";
    return 0;
  }
  if (op == "inspect") {
    if (a.input.empty()) usage("client inspect needs -i");
    const auto archive = read_file(a.input);
    std::cout << client.inspect(std::span<const std::uint8_t>(archive), ropts);
    return 0;
  }
  usage(("unknown client op '" + op +
         "' (want ping|compress|decompress|inspect|stats|shutdown)").c_str());
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "client") {
      if (argc < 3) usage("client needs an operation");
      const std::string op = argv[2];
      const Args a = parse_args(argc, argv, 3);
      apply_simd(a);
      return cmd_client(op, a);
    }
    const Args a = parse_args(argc, argv, 2);
    apply_simd(a);
    if (cmd == "compress") return cmd_compress(a);
    if (cmd == "compress-batch") return cmd_compress_batch(a);
    if (cmd == "compress-series") return cmd_compress_series(a);
    if (cmd == "decompress") return cmd_decompress(a);
    if (cmd == "inspect") return cmd_inspect(a);
    if (cmd == "demo") return cmd_demo(a);
    if (cmd == "pack") return cmd_pack(a);
    if (cmd == "list") return cmd_list(a);
    if (cmd == "unpack") return cmd_unpack(a);
    if (cmd == "serve") return cmd_serve(a);
    usage(("unknown command " + cmd).c_str());
  } catch (const service::ServiceError& e) {
    std::cerr << "service error (" << service::error_code_name(e.code())
              << "): " << e.what() << "\n";
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
