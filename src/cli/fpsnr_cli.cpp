// fpsnr_cli — command-line front end for the fixed-PSNR compressor.
//
//   fpsnr_cli compress   -i data.f32 -d 100x500x500 -m psnr -v 80 -o out.fpsz
//   fpsnr_cli decompress -i out.fpsz -o restored.f32
//   fpsnr_cli inspect    -i out.fpsz
//   fpsnr_cli demo       --dataset atm --psnr 80
//
// Raw input files are little-endian float32 arrays in C order.
#include <cmath>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <optional>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "core/batch.h"
#include "core/compressor.h"
#include "core/pipeline.h"
#include "core/version.h"
#include "data/dataset.h"
#include "io/archive.h"
#include "io/streaming_archive.h"
#include "sz/stream_format.h"

namespace {

using namespace fpsnr;

[[noreturn]] void usage(const char* msg = nullptr) {
  if (msg) std::cerr << "error: " << msg << "\n\n";
  std::cerr <<
      "fpsnr_cli " << kVersionString << " — fixed-PSNR lossy compression\n"
      "\n"
      "  fpsnr_cli compress   -i IN.f32 -d DIMS -m MODE -v VALUE -o OUT.fpsz\n"
      "      DIMS        e.g. 512, 1800x3600, 100x500x500 (C order)\n"
      "      MODE        psnr | abs | rel | pwrel | nrmse\n"
      "      VALUE       target PSNR (dB) for psnr, bound otherwise\n"
      "      --predictor lorenzo | hybrid   (default lorenzo)\n"
      "      --engine    sz | haar | dct | interp | zfpr | store (default sz)\n"
      "      --budget    uniform | adaptive (default uniform; adaptive\n"
      "                  reallocates per-block error bounds by smoothness\n"
      "                  at the same global PSNR target)\n"
      "      --threads N     block-parallel compression on N workers\n"
      "                      (output bytes are identical for every N)\n"
      "      --block-size R  axis-0 rows per block (default: auto)\n"
      "      --stream        spill blocks to -o as workers finish (peak\n"
      "                      memory stays O(in-flight blocks); the file is\n"
      "                      byte-identical to the in-memory path)\n"
      "      --report-psnr   print the exact achieved PSNR of the archive\n"
      "  fpsnr_cli decompress -i IN.fpsz -o OUT.f32 [--threads N] [--block I]\n"
      "      --block I   random-access decode of block I only\n"
      "      --mmap      memory-map IN instead of loading it; with --block,\n"
      "                  only that block's bytes are ever read\n"
      "      --report-psnr   print the archive's recorded exact PSNR (v2)\n"
      "  fpsnr_cli inspect    -i IN.fpsz\n"
      "  fpsnr_cli demo       [--dataset nyx|atm|hurricane] [--psnr DB]\n"
      "  fpsnr_cli pack       --dataset NAME --psnr DB -o OUT.fpar\n"
      "      compress every field of a synthetic dataset into one archive\n"
      "  fpsnr_cli list       -i IN.fpar\n"
      "  fpsnr_cli unpack     -i IN.fpar --field NAME -o OUT.f32\n";
  std::exit(2);
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) usage(("cannot open " + path).c_str());
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void write_file(const std::string& path, const void* data, std::size_t bytes) {
  std::ofstream out(path, std::ios::binary);
  if (!out) usage(("cannot write " + path).c_str());
  out.write(static_cast<const char*>(data), static_cast<std::streamsize>(bytes));
}

data::Dims parse_dims(const std::string& s) {
  std::vector<std::size_t> extents;
  std::stringstream ss(s);
  std::string part;
  while (std::getline(ss, part, 'x')) extents.push_back(std::stoull(part));
  return data::Dims(std::move(extents));
}

core::ControlRequest parse_request(const std::string& mode, double value) {
  if (mode == "psnr") return core::ControlRequest::fixed_psnr(value);
  if (mode == "abs") return core::ControlRequest::absolute(value);
  if (mode == "rel") return core::ControlRequest::relative(value);
  if (mode == "pwrel") return core::ControlRequest::pointwise(value);
  if (mode == "nrmse") return core::ControlRequest::fixed_nrmse(value);
  usage("unknown mode (want psnr|abs|rel|pwrel|nrmse)");
}

struct Args {
  std::string input, output, dims, mode = "psnr", dataset = "atm";
  std::string predictor = "lorenzo", engine = "sz", budget = "uniform", field;
  double value = 80.0;
  std::size_t threads = 0;
  std::size_t block_size = 0;
  std::optional<std::size_t> block;  ///< random-access block index
  bool stream = false;  ///< compress: spill blocks to disk as they finish
  bool mmap = false;    ///< decompress: map the archive instead of loading
  bool report_psnr = false;  ///< print the exact recorded PSNR
};

Args parse_args(int argc, char** argv, int first) {
  Args a;
  for (int i = first; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(("missing value for " + flag).c_str());
      return argv[++i];
    };
    if (flag == "-i" || flag == "--input") a.input = next();
    else if (flag == "-o" || flag == "--output") a.output = next();
    else if (flag == "-d" || flag == "--dims") a.dims = next();
    else if (flag == "-m" || flag == "--mode") a.mode = next();
    else if (flag == "-v" || flag == "--value" || flag == "--psnr") a.value = std::stod(next());
    else if (flag == "--dataset") a.dataset = next();
    else if (flag == "--predictor") a.predictor = next();
    else if (flag == "--engine") a.engine = next();
    else if (flag == "--budget") a.budget = next();
    else if (flag == "--field") a.field = next();
    else if (flag == "--threads") a.threads = std::stoull(next());
    else if (flag == "--block-size") a.block_size = std::stoull(next());
    else if (flag == "--block") a.block = std::stoull(next());
    else if (flag == "--stream") a.stream = true;
    else if (flag == "--mmap") a.mmap = true;
    else if (flag == "--report-psnr") a.report_psnr = true;
    else usage(("unknown flag " + flag).c_str());
  }
  return a;
}

/// Resolve --engine against the codec registry. Accepts the CLI short
/// names and the registered codec names; anything else prints the live
/// registry listing and exits non-zero.
core::Engine parse_engine(const std::string& name) {
  if (name == "sz" || name == "lorenzo") return core::Engine::SzLorenzo;
  if (name == "haar") return core::Engine::TransformHaar;
  if (name == "dct") return core::Engine::TransformDct;
  const auto& registry = core::CodecRegistry::instance();
  try {
    return static_cast<core::Engine>(registry.id_of(name));
  } catch (const std::out_of_range&) {
    std::cerr << "error: unknown engine '" << name
              << "'\nregistered codecs:\n";
    for (core::CodecId id : registry.ids())
      std::cerr << "  " << static_cast<int>(id) << "  "
                << registry.at(id).name() << "\n";
    std::cerr << "(short names: sz, haar, dct, interp, zfpr, store)\n";
    std::exit(2);
  }
}

core::BudgetMode parse_budget(const std::string& name) {
  if (name == "uniform") return core::BudgetMode::Uniform;
  if (name == "adaptive") return core::BudgetMode::Adaptive;
  usage("unknown budget mode (want uniform|adaptive)");
}

int cmd_compress(const Args& a) {
  if (a.input.empty() || a.output.empty() || a.dims.empty())
    usage("compress needs -i, -o, -d");
  const auto raw = read_file(a.input);
  if (raw.size() % sizeof(float) != 0) usage("input size is not a multiple of 4");
  std::vector<float> values(raw.size() / sizeof(float));
  if (!raw.empty()) std::memcpy(values.data(), raw.data(), raw.size());
  const data::Dims dims = parse_dims(a.dims);
  if (dims.count() != values.size()) usage("dims do not match input size");

  core::CompressOptions opts;
  if (a.predictor == "hybrid")
    opts.sz_predictor = sz::Predictor::HybridRegression;
  else if (a.predictor != "lorenzo")
    usage("unknown predictor (want lorenzo|hybrid)");
  opts.engine = parse_engine(a.engine);
  opts.budget = parse_budget(a.budget);
  if (a.threads > 0 || a.block_size > 0 || a.stream) {
    opts.parallel.block_pipeline = true;
    opts.parallel.threads = a.threads;
    opts.parallel.block_rows = a.block_size;
  }
  core::CompressResult result;
  io::StreamingStats stats;
  if (a.stream) {
    result = core::compress_to_file<float>(
        values, dims, parse_request(a.mode, a.value), opts, a.output, &stats);
    std::cout << "streamed to " << a.output << ": peak reorder buffer "
              << stats.peak_buffered_bytes << " bytes ("
              << stats.peak_buffered_blocks << " block(s)) vs "
              << stats.total_bytes << " container bytes\n";
  } else {
    result = core::compress<float>(values, dims,
                                   parse_request(a.mode, a.value), opts);
    write_file(a.output, result.stream.data(), result.stream.size());
  }

  std::cout << "compressed " << values.size() << " values -> "
            << result.info.compressed_bytes << " bytes  (ratio "
            << std::fixed << std::setprecision(2) << result.info.compression_ratio
            << ", " << result.info.bit_rate << " bits/value)\n";
  if (opts.parallel.enabled()) {
    // Everything here is known in-process: the streaming writer reports the
    // layout it wrote, the in-memory path inspects its own bytes — the
    // output file is never re-read just to print a summary.
    std::uint64_t block_count = stats.block_count;
    std::uint64_t block_rows = stats.block_rows;
    if (!a.stream) {
      const auto info = core::inspect_block_stream(result.stream);
      block_count = info.block_count;
      block_rows = info.block_rows;
    }
    const auto codec_name = core::CodecRegistry::instance()
                                .at(static_cast<core::CodecId>(opts.engine))
                                .name();
    std::cout << "block pipeline: " << block_count << " block(s) x "
              << block_rows << " row(s), codec " << codec_name << ", "
              << (a.threads > 1 ? a.threads : 1) << " thread(s)\n";
  }
  if (a.mode == "psnr")
    std::cout << "target PSNR " << a.value << " dB, eb_rel used "
              << std::scientific << result.rel_bound_used << "\n";
  if (a.report_psnr) {
    if (std::isnan(result.achieved_psnr_db))
      std::cout << "achieved PSNR: not tracked for this mode\n";
    else
      std::cout << "achieved PSNR " << std::fixed << std::setprecision(6)
                << result.achieved_psnr_db
                << " dB (exact, measured at compress time)\n";
  }
  return 0;
}

/// Print the exact PSNR recorded in a v2 archive's per-block SSE column.
void report_archive_psnr(std::span<const std::uint8_t> stream) {
  if (!core::is_block_stream(stream)) {
    std::cout << "recorded PSNR: n/a (not an FPBK archive)\n";
    return;
  }
  const auto info = core::inspect_block_stream(stream);
  if (std::isnan(info.achieved_psnr_db))
    std::cout << "recorded PSNR: n/a (v1 archive, no per-block SSE index)\n";
  else
    std::cout << "recorded PSNR " << std::fixed << std::setprecision(6)
              << info.achieved_psnr_db << " dB (exact, from per-block SSE)\n";
}

int cmd_decompress(const Args& a) {
  if (a.input.empty() || a.output.empty()) usage("decompress needs -i, -o");
  if (a.mmap) {
    // Memory-map the archive once: the payload is faulted in lazily, and
    // with --block only that block's extent is ever read.
    try {
      const io::MmapArchiveReader reader(a.input);
      const auto d =
          a.block ? core::decompress_block<float>(reader.bytes(), *a.block)
                  : core::decompress_blocked<float>(reader.bytes(), a.threads);
      write_file(a.output, d.values.data(), d.values.size() * sizeof(float));
      if (a.block)
        std::cout << "decompressed block " << *a.block << ": "
                  << d.values.size() << " values (" << d.dims[0]
                  << " row(s), mmap)\n";
      else
        std::cout << "decompressed " << d.values.size() << " values (rank "
                  << d.dims.rank() << ", mmap)\n";
      if (a.report_psnr) report_archive_psnr(reader.bytes());
      return 0;
    } catch (const io::StreamError&) {
      // Cold path: distinguish "not an FPBK archive" (mmap decode needs
      // the block index; legacy .fpsz streams don't have one) from real
      // I/O or corruption errors, which propagate as-is.
      std::ifstream probe(a.input, std::ios::binary);
      std::uint8_t magic[4] = {};
      probe.read(reinterpret_cast<char*>(magic), 4);
      if (probe.gcount() == 4 &&
          !io::is_block_container(std::span<const std::uint8_t>(magic, 4)))
        usage("--mmap requires a block-pipeline (FPBK) archive "
              "(compress with --threads/--block-size/--stream)");
      throw;
    }
  }
  const auto stream = read_file(a.input);
  if (a.block) {
    if (!core::is_block_stream(stream))
      usage("--block requires a block-pipeline (FPBK) stream");
    const auto d = core::decompress_block<float>(stream, *a.block);
    write_file(a.output, d.values.data(), d.values.size() * sizeof(float));
    std::cout << "decompressed block " << *a.block << ": " << d.values.size()
              << " values (" << d.dims[0] << " row(s))\n";
    return 0;
  }
  const auto d = core::is_block_stream(stream)
                     ? core::decompress_blocked<float>(stream, a.threads)
                     : core::decompress<float>(stream);
  write_file(a.output, d.values.data(), d.values.size() * sizeof(float));
  std::cout << "decompressed " << d.values.size() << " values (rank "
            << d.dims.rank() << ")\n";
  if (a.report_psnr) report_archive_psnr(stream);
  return 0;
}

int cmd_inspect(const Args& a) {
  if (a.input.empty()) usage("inspect needs -i");
  const auto stream = read_file(a.input);
  if (core::is_block_stream(stream)) {
    const auto info = core::inspect_block_stream(stream);
    std::cout << "container   : block-parallel (FPBK v"
              << static_cast<int>(info.version) << ")\n"
              << "codec       : " << info.codec_name << "\n"
              << "control     : " << core::control_mode_name(info.control_mode)
              << " = " << info.control_value << "\n"
              << "budget      : "
              << (info.budget_mode == core::BudgetMode::Adaptive ? "adaptive"
                                                                 : "uniform")
              << "\n"
              << "rank        : " << info.dims.rank() << "\n";
    std::cout << "extents     : ";
    for (std::size_t i = 0; i < info.dims.rank(); ++i)
      std::cout << (i ? " x " : "") << info.dims[i];
    std::cout << "\n"
              << "blocks      : " << info.block_count << " x "
              << info.block_rows << " row(s)\n"
              << "eb_abs      : " << std::scientific << info.eb_abs << "\n"
              << "value range : " << info.value_range << "\n";
    if (std::isnan(info.achieved_psnr_db))
      std::cout << "exact PSNR  : n/a (v1 archive)\n";
    else
      std::cout << "exact PSNR  : " << std::fixed << std::setprecision(6)
                << info.achieved_psnr_db << " dB\n";
    std::cout << "stream size : " << stream.size() << " bytes\n";
    return 0;
  }
  const auto h = sz::inspect(stream);
  std::cout << "scalar      : " << (h.scalar == sz::ScalarType::Float32 ? "float32" : "float64") << "\n"
            << "mode        : " << sz::mode_name(h.mode) << "\n"
            << "rank        : " << h.dims.rank() << "\n";
  std::cout << "extents     : ";
  for (std::size_t i = 0; i < h.dims.rank(); ++i)
    std::cout << (i ? " x " : "") << h.dims[i];
  std::cout << "\n"
            << "eb_abs      : " << std::scientific << h.eb_abs << "\n"
            << "user bound  : " << h.user_bound << "\n"
            << "value range : " << h.value_range << "\n"
            << "quant bins  : " << h.quant_bins << "\n"
            << "stream size : " << stream.size() << " bytes\n";
  return 0;
}

data::Dataset make_named_dataset(const std::string& name) {
  data::DatasetConfig cfg;
  if (name == "nyx") return data::make_nyx(cfg);
  if (name == "atm") return data::make_atm(cfg);
  if (name == "hurricane") return data::make_hurricane(cfg);
  usage("unknown dataset (want nyx|atm|hurricane)");
}

int cmd_pack(const Args& a) {
  if (a.output.empty()) usage("pack needs -o");
  const data::Dataset ds = make_named_dataset(a.dataset);
  std::vector<io::ArchiveEntry> entries;
  for (const auto& f : ds.fields) {
    io::ArchiveEntry e;
    e.name = f.name;
    e.bytes = core::compress_fixed_psnr<float>(f.span(), f.dims, a.value).stream;
    entries.push_back(std::move(e));
  }
  const auto archive = io::write_archive(entries);
  write_file(a.output, archive.data(), archive.size());
  std::cout << "packed " << ds.field_count() << " fields ("
            << ds.total_bytes() << " raw bytes) into " << archive.size()
            << " bytes at " << a.value << " dB\n";
  return 0;
}

int cmd_list(const Args& a) {
  if (a.input.empty()) usage("list needs -i");
  const auto archive = read_file(a.input);
  for (const auto& name : io::list_archive(archive)) std::cout << name << "\n";
  return 0;
}

int cmd_unpack(const Args& a) {
  if (a.input.empty() || a.output.empty() || a.field.empty())
    usage("unpack needs -i, -o, --field");
  const auto archive = read_file(a.input);
  const auto stream = io::archive_entry(archive, a.field);
  const auto d = core::decompress<float>(stream);
  write_file(a.output, d.values.data(), d.values.size() * sizeof(float));
  std::cout << "extracted " << a.field << ": " << d.values.size() << " values\n";
  return 0;
}

int cmd_demo(const Args& a) {
  data::Dataset ds = make_named_dataset(a.dataset);

  std::cout << "dataset " << ds.name << ": " << ds.field_count() << " fields, "
            << ds.total_bytes() / (1024.0 * 1024.0) << " MB raw\n"
            << "target PSNR " << a.value << " dB (fixed-PSNR mode)\n\n";

  const auto batch = core::run_fixed_psnr_batch(ds, a.value);
  std::cout << std::left << std::setw(12) << "field" << std::right
            << std::setw(12) << "actual dB" << std::setw(10) << "ratio"
            << std::setw(8) << "met\n";
  for (const auto& f : batch.fields)
    std::cout << std::left << std::setw(12) << f.field_name << std::right
              << std::setw(12) << std::fixed << std::setprecision(2)
              << f.actual_psnr_db << std::setw(10) << f.compression_ratio
              << std::setw(7) << (f.met_target ? "yes" : "no") << "\n";
  const auto stats = batch.psnr_stats();
  std::cout << "\nAVG " << stats.mean() << " dB, STDEV " << stats.stdev()
            << " dB, met " << 100.0 * batch.met_fraction() << "%\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string cmd = argv[1];
  try {
    const Args a = parse_args(argc, argv, 2);
    if (cmd == "compress") return cmd_compress(a);
    if (cmd == "decompress") return cmd_decompress(a);
    if (cmd == "inspect") return cmd_inspect(a);
    if (cmd == "demo") return cmd_demo(a);
    if (cmd == "pack") return cmd_pack(a);
    if (cmd == "list") return cmd_list(a);
    if (cmd == "unpack") return cmd_unpack(a);
    usage(("unknown command " + cmd).c_str());
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
